"""Change-point detection and anomaly attribution over timelines."""

import pytest

from repro.obs import (
    AnomalyReport,
    TimelineCollector,
    detect_anomalies,
    detect_change_points,
)
from repro.sim import Simulator


def test_level_shift_detected_once_at_onset():
    values = [10.0] * 30 + [50.0] * 30
    detections = detect_change_points(values, window=8)
    assert len(detections) == 1
    index, z = detections[0]
    assert z > 0  # upward shift
    # The cluster collapses to its strongest member, which sits where the
    # two windows straddle the shift most cleanly — at the onset.
    assert 30 - 8 < index <= 30 + 8


def test_downward_shift_scores_negative():
    values = [100.0] * 20 + [20.0] * 20
    detections = detect_change_points(values, window=8)
    assert len(detections) == 1
    assert detections[0][1] < 0


def test_flat_and_noisy_series_stay_quiet():
    assert detect_change_points([7.0] * 64) == []
    # Bursty-but-steady: oscillation inflates the pooled stddev and
    # averages out of both window means, so no sustained shift scores.
    noisy = [5.0 + (3.0 if i % 2 else -3.0) for i in range(64)]
    assert detect_change_points(noisy, window=8) == []


def test_short_series_yield_nothing():
    assert detect_change_points([1.0, 99.0] * 3, window=8) == []


def test_relative_floor_bounds_z_on_flat_baselines():
    # A flat baseline must not manufacture unbounded z-scores from a
    # small absolute wiggle: z is bounded by shift / (5% of magnitude).
    values = [1000.0] * 16 + [1001.0] * 16
    assert detect_change_points(values, window=8) == []


def test_detector_validates_arguments():
    with pytest.raises(ValueError, match="window"):
        detect_change_points([1.0] * 32, window=1)
    with pytest.raises(ValueError, match="z_threshold"):
        detect_change_points([1.0] * 32, z_threshold=0)


def _make_timeline():
    """Two gauges (one shifts, one flat) and a counter whose rate stalls."""
    collector = TimelineCollector(Simulator())
    depth = collector.add_probe("nic.server", "rx_depth", lambda: 0)
    flat = collector.add_probe("cpu.core0", "runq", lambda: 0)
    busy = collector.add_probe("nic.client", "busy_ns", lambda: 0,
                               mode="counter", tenant="t0")
    total = 0
    for i in range(60):
        t = i * 1000
        depth.append(t, 4.0 if i < 30 else 40.0)
        flat.append(t, 2.0)
        # busy integral climbs at a steady rate, then stalls at i == 40.
        total += 800 if i < 40 else 0
        busy.append(t, total)
    return collector


def test_detect_anomalies_names_series_and_culprit():
    report = detect_anomalies(_make_timeline())
    assert report.findings, "expected findings on the shifted gauge"
    components = {f.component for f in report.findings}
    assert "cpu.core0" not in components  # flat gauge stays quiet
    shifted = [f for f in report.findings if f.component == "nic.server"]
    assert shifted and shifted[0].direction == "up"
    assert shifted[0].baseline == pytest.approx(4.0)
    assert shifted[0].value == pytest.approx(40.0)
    # The counter is analyzed as a *rate*: the stall is a downward shift.
    stalled = [f for f in report.findings if f.component == "nic.client"]
    assert stalled and stalled[0].direction == "down"
    assert stalled[0].mode == "counter"
    assert stalled[0].tenant == "t0"
    # Findings sort by descending |z|; culprit has the largest z-mass.
    zs = [abs(f.zscore) for f in report.findings]
    assert zs == sorted(zs, reverse=True)
    assert report.culprit in ("nic.server", "nic.client")


def test_dict_dump_form_matches_live_collector():
    collector = _make_timeline()
    live = detect_anomalies(collector)
    dumped = detect_anomalies(collector.to_dict())
    assert dumped.as_dict() == live.as_dict()


def test_rejects_non_timeline_input():
    with pytest.raises(TypeError, match="TimelineCollector"):
        detect_anomalies([1, 2, 3])


def test_max_per_series_caps_oscillating_probes():
    collector = TimelineCollector(Simulator())
    gauge = collector.add_probe("xport", "unacked", lambda: 0)
    # A gauge that keeps re-shifting between sustained levels trips the
    # detector repeatedly; the cap keeps only the strongest findings.
    for i in range(400):
        gauge.append(i * 1000, 100.0 if (i // 20) % 2 else 5.0)
    uncapped = detect_anomalies(collector, max_per_series=None)
    assert len(uncapped.findings) > 5
    capped = detect_anomalies(collector)
    assert len(capped.findings) == 5
    kept = sorted(abs(f.zscore) for f in capped.findings)
    dropped = sorted(abs(f.zscore) for f in uncapped.findings)[:-5]
    assert not dropped or kept[0] >= dropped[-1]


def test_empty_report_has_no_culprit():
    report = AnomalyReport()
    assert report.culprit is None
    assert report.culprit_tenant is None
    assert report.as_dict()["findings"] == []


def test_culprit_tenant_attribution():
    collector = TimelineCollector(Simulator())
    noisy = collector.add_probe("nic.b", "depth", lambda: 0, tenant="bully")
    calm = collector.add_probe("nic.a", "depth", lambda: 0, tenant="victim")
    for i in range(40):
        noisy.append(i * 1000, 1.0 if i < 20 else 500.0)
        calm.append(i * 1000, 3.0)
    report = detect_anomalies(collector)
    assert report.culprit == "nic.b"
    assert report.culprit_tenant == "bully"
    assert report.as_dict()["culprit_tenant"] == "bully"
