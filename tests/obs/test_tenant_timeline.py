"""Tenant dimension of the timeline layer (ISSUE 4).

Covers the 4-tuple ``timeline_probes()`` protocol, tenant-tagged series
and summaries, per-tenant Perfetto counter processes, and the tenant
attribution rules of ``attribute_bottleneck`` (noisy neighbour blamed by
name; a uniformly-saturated class names nobody).
"""

import json

import pytest

from repro.obs import utilization_summary, utilization_tenants
from repro.obs.chrome_trace import (
    TELEMETRY_PID,
    TENANT_PID_BASE,
    chrome_trace_events,
)
from repro.obs.timeline import TimelineCollector, attribute_bottleneck
from repro.sim import Simulator


class FakeTenantSource:
    """Yields 4-tuple probes for two tenants plus one shared triple."""

    def timeline_probes(self):
        return [
            ("t0", "fetch_busy_ns", "counter", lambda: 100),
            ("t1", "fetch_busy_ns", "counter", lambda: 5),
            ("depth", "gauge", lambda: 3),
        ]


def test_add_source_lands_tenant_probes_under_tenant_namespace():
    collector = TimelineCollector(Simulator())
    collector.add_source("nic", FakeTenantSource())
    components = collector.components()
    assert components == ["nic.t0", "nic.t1", "nic"]
    assert collector.tenants() == ["t0", "t1"]
    assert [s.name for s in collector.series(tenant="t0")] == ["fetch_busy_ns"]
    shared = collector.get("nic", "depth")
    assert shared is not None and shared.tenant is None


def test_add_probe_tenant_tag_round_trips_record():
    collector = TimelineCollector(Simulator())
    tagged = collector.add_probe("client.t0", "outstanding", lambda: 1,
                                 tenant="t0")
    plain = collector.add_probe("cpu.core0", "busy_ns", lambda: 0,
                                mode="counter")
    assert tagged.to_record()["tenant"] == "t0"
    assert "tenant" not in plain.to_record()


def test_utilization_tenants_names_only_tagged_busy_series():
    sim = Simulator()
    collector = TimelineCollector(sim, interval_ns=10)
    state = {"t0": 0, "t1": 0, "shared": 0}
    collector.add_probe("nic.t0", "fetch_busy_ns",
                        lambda: state["t0"], mode="counter", tenant="t0")
    collector.add_probe("nic.t1", "fetch_busy_ns",
                        lambda: state["t1"], mode="counter", tenant="t1")
    collector.add_probe("interconnect", "upi_busy_ns",
                        lambda: state["shared"], mode="counter")
    collector.add_probe("nic.t0", "ring_depth", lambda: 2, tenant="t0")
    collector.start()

    def advance():
        yield 100
        state.update(t0=90, t1=10, shared=50)
        yield 100

    sim.run_until_done(sim.spawn(advance()))
    collector.stop()
    util = utilization_summary(collector)
    tenants = utilization_tenants(collector)
    assert util["nic.t0.fetch"] == pytest.approx(0.45)
    assert util["nic.t1.fetch"] == pytest.approx(0.05)
    assert tenants == {"nic.t0.fetch": "t0", "nic.t1.fetch": "t1"}
    assert "interconnect.upi" in util and "interconnect.upi" not in tenants


def _point(load, p99, util, tenants=None):
    point = {"offered_mrps": load, "p99_us": p99, "utilization": util}
    if tenants is not None:
        point["tenants"] = tenants
    return point


TENANTS = {"nic.t0.fetch": "t0", "nic.t1.fetch": "t1", "nic.t2.fetch": "t2"}


def test_noisy_neighbour_blamed_by_name():
    points = [
        _point(1.0, 2.0, {"nic.t0.fetch": 0.12, "nic.t1.fetch": 0.06,
                          "nic.t2.fetch": 0.06, "interconnect.upi": 0.05},
               TENANTS),
        _point(7.8, 9.0, {"nic.t0.fetch": 0.95, "nic.t1.fetch": 0.06,
                          "nic.t2.fetch": 0.06, "interconnect.upi": 0.2},
               TENANTS),
    ]
    report = attribute_bottleneck(points)
    assert report.bottleneck == "nic.t0.fetch"
    assert report.bottleneck_tenant == "t0"
    assert report.as_dict()["bottleneck_tenant"] == "t0"
    assert report.per_point[-1]["tenant"] == "t0"


def test_balanced_saturation_names_no_tenant():
    points = [
        _point(1.0, 2.0, {"nic.t0.fetch": 0.1, "nic.t1.fetch": 0.1,
                          "nic.t2.fetch": 0.1}, TENANTS),
        _point(8.0, 9.0, {"nic.t0.fetch": 0.93, "nic.t1.fetch": 0.91,
                          "nic.t2.fetch": 0.92}, TENANTS),
    ]
    report = attribute_bottleneck(points)
    assert report.bottleneck == "nic.t0.fetch"
    assert report.bottleneck_tenant is None


def test_shared_component_bottleneck_names_no_tenant():
    points = [
        _point(1.0, 2.0, {"interconnect.upi": 0.2, "nic.t0.fetch": 0.1},
               TENANTS),
        _point(8.0, 9.0, {"interconnect.upi": 0.97, "nic.t0.fetch": 0.5},
               TENANTS),
    ]
    report = attribute_bottleneck(points)
    assert report.bottleneck == "interconnect.upi"
    assert report.bottleneck_tenant is None


def test_points_without_tenant_mapping_stay_tenantless():
    points = [
        _point(1.0, 2.0, {"nic.client.fetch": 0.2}),
        _point(8.0, 9.0, {"nic.client.fetch": 0.95}),
    ]
    report = attribute_bottleneck(points)
    assert report.bottleneck == "nic.client.fetch"
    assert report.bottleneck_tenant is None


def test_chrome_trace_gives_each_tenant_its_own_counter_process():
    sim = Simulator()
    collector = TimelineCollector(sim, interval_ns=10)
    collector.add_source("nic", FakeTenantSource())
    collector.start()

    def advance():
        yield 50

    sim.run_until_done(sim.spawn(advance()))
    collector.stop()
    events = chrome_trace_events(collector=collector)
    names = {e["args"]["name"]: e["pid"] for e in events
             if e["ph"] == "M" and e["name"] == "process_name"}
    assert names["tenant t0"] == TENANT_PID_BASE
    assert names["tenant t1"] == TENANT_PID_BASE + 1
    counter_pids = {e["name"]: e["pid"] for e in events if e["ph"] == "C"}
    assert counter_pids["nic.t0.fetch utilization"] == TENANT_PID_BASE
    assert counter_pids["nic.t1.fetch utilization"] == TENANT_PID_BASE + 1
    assert counter_pids["nic.depth"] == TELEMETRY_PID
    json.dumps(events)  # must stay JSON-able
