"""Unit tests for the span tracer (repro.obs.trace)."""

from repro.obs import CANONICAL_POINTS, SpanTracer, attach_tracer, packet_point
from repro.rpc.client import RpcClient
from repro.rpc.messages import RpcKind, RpcPacket
from repro.rpc.server import RpcServerThread
from repro.hw.interconnect.base import CpuNicInterface
from repro.hw.nic.dagger_nic import DaggerNic


def test_record_builds_spans_in_rpc_id_order():
    tracer = SpanTracer()
    tracer.record(7, "req_issue", 100)
    tracer.record(3, "req_issue", 50)
    tracer.record(3, "resp_complete", 950)
    assert len(tracer) == 2
    assert [s.rpc_id for s in tracer.spans()] == [3, 7]
    span = tracer.span(3)
    assert span.complete
    assert span.e2e_ns == 900
    assert not tracer.span(7).complete
    assert tracer.span(7).e2e_ns is None


def test_first_timestamp_wins_like_packet_stamp():
    tracer = SpanTracer()
    tracer.record(1, "req_wire_tx", 200)
    tracer.record(1, "req_wire_tx", 900)  # retransmit
    assert tracer.span(1).events["req_wire_tx"] == 200


def test_packet_point_qualifies_direction():
    req = RpcPacket(RpcKind.REQUEST, 1, "m", b"", 48)
    resp = req.make_response(b"", 48)
    assert packet_point(req, "wire_tx") == "req_wire_tx"
    assert packet_point(resp, "wire_tx") == "resp_wire_tx"


def test_record_packet_skips_control_packets():
    tracer = SpanTracer()
    control = RpcPacket(RpcKind.CONTROL, 1, "__ack__", 0, 16)
    tracer.record_packet(control, "wire_tx", 10)
    assert len(tracer) == 0


def test_ordered_events_follow_lifecycle_not_insertion():
    tracer = SpanTracer()
    tracer.record(1, "resp_complete", 900)
    tracer.record(1, "req_issue", 0)
    tracer.record(1, "req_wire_tx", 300)
    names = [name for name, _ in tracer.span(1).ordered_events()]
    assert names == ["req_issue", "req_wire_tx", "resp_complete"]


def test_canonical_points_bracket_the_lifecycle():
    assert CANONICAL_POINTS[0] == "req_issue"
    assert CANONICAL_POINTS[-1] == "resp_complete"
    assert len(set(CANONICAL_POINTS)) == len(CANONICAL_POINTS)


def test_transfers_aggregate_per_component():
    tracer = SpanTracer()
    tracer.record_transfer("upi", 1, 100)
    tracer.record_transfer("upi", 4, 300)
    tracer.record_transfer("pcie-mmio", 2, 200)
    assert tracer.transfers["upi"]["transactions"] == 2
    assert tracer.transfers["upi"]["lines"] == 5
    assert tracer.transfers["upi"]["first_ns"] == 100
    assert tracer.transfers["upi"]["last_ns"] == 300
    assert tracer.transfers["pcie-mmio"]["lines"] == 2


def test_clear_resets_everything():
    tracer = SpanTracer()
    tracer.record(1, "req_issue", 0)
    tracer.record_transfer("upi", 1, 0)
    tracer.clear()
    assert len(tracer) == 0
    assert tracer.transfers == {}


def test_all_hookable_components_default_to_no_tracer():
    # The zero-cost-when-disabled contract: hooks only check a class
    # attribute that defaults to None.
    for cls in (RpcClient, RpcServerThread, DaggerNic, CpuNicInterface):
        assert cls.tracer is None


def test_attach_tracer_sets_and_detaches():
    class Thing:
        tracer = None

    things = [Thing(), Thing()]
    tracer = SpanTracer()
    attach_tracer(tracer, things)
    assert all(t.tracer is tracer for t in things)
    attach_tracer(None, things)
    assert all(t.tracer is None for t in things)


def test_span_to_record_is_json_shaped():
    tracer = SpanTracer()
    tracer.record(5, "req_issue", 10)
    record = tracer.span(5).to_record()
    assert record == {"type": "span", "rpc_id": 5,
                      "events": {"req_issue": 10}}
