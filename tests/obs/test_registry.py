"""Unit tests for the metrics registry (repro.obs.registry)."""

from dataclasses import dataclass

import pytest

from repro.obs import MetricsRegistry, register_dagger_nic
from repro.rpc.transport import TransportStats


def test_counter_gauge_histogram_roundtrip():
    registry = MetricsRegistry()
    registry.counter("nic", "drops").inc()
    registry.counter("nic", "drops").inc(4)
    registry.gauge("nic", "occupancy").set(0.5)
    hist = registry.histogram("nic", "batch")
    for v in (1, 2, 3, 4):
        hist.observe(v)
    snap = registry.snapshot()
    assert snap["nic"]["drops"] == 5
    assert snap["nic"]["occupancy"] == 0.5
    assert snap["nic"]["batch"]["count"] == 4
    assert snap["nic"]["batch"]["p50"] == 2.5
    assert snap["nic"]["batch"]["min"] == 1
    assert snap["nic"]["batch"]["max"] == 4


def test_counters_reject_negative_increments():
    registry = MetricsRegistry()
    with pytest.raises(ValueError):
        registry.counter("c", "n").inc(-1)


def test_empty_histogram_summarizes_to_count_zero():
    registry = MetricsRegistry()
    registry.histogram("c", "h")
    assert registry.snapshot()["c"]["h"] == {"count": 0}


def test_register_absorbs_stats_dataclass():
    registry = MetricsRegistry()
    stats = TransportStats()
    registry.register("nic", stats, name="transport")
    stats.retransmissions = 3
    snap = registry.snapshot()
    # Live view: mutations after registration are visible, prefixed.
    assert snap["nic"]["transport.retransmissions"] == 3
    assert snap["nic"]["transport.data_packets"] == 0


def test_register_absorbs_snapshot_objects_and_callables():
    class MonitorLike:
        def snapshot(self):
            return {"tx": 7}

    registry = MetricsRegistry()
    registry.register("a", MonitorLike())
    registry.register("b", lambda: {"lines": 12})
    snap = registry.snapshot()
    assert snap["a"]["tx"] == 7
    assert snap["b"]["lines"] == 12


def test_register_rejects_uncollectable_sources():
    registry = MetricsRegistry()
    with pytest.raises(TypeError):
        registry.register("a", object())


def test_named_sources_do_not_clobber_each_other():
    registry = MetricsRegistry()
    registry.register("nic", lambda: {"x": 1})
    registry.register("nic", lambda: {"x": 2}, name="other")
    snap = registry.snapshot()
    assert snap["nic"]["x"] == 1
    assert snap["nic"]["other.x"] == 2


def test_components_listing_is_sorted_union():
    registry = MetricsRegistry()
    registry.counter("b", "n")
    registry.register("a", lambda: {})
    registry.histogram("c", "h")
    assert registry.components() == ["a", "b", "c"]


def test_register_dagger_nic_absorbs_all_nic_stats():
    from repro.hw.calibration import DEFAULT_CALIBRATION
    from repro.hw.interconnect.ccip import make_interface
    from repro.hw.nic.config import NicHardConfig
    from repro.hw.nic.dagger_nic import DaggerNic
    from repro.hw.platform import Machine
    from repro.hw.switch import ToRSwitch
    from repro.sim import Simulator

    sim = Simulator()
    machine = Machine(sim)
    switch = ToRSwitch(sim, DEFAULT_CALIBRATION, loopback=True)
    interface = make_interface("upi", sim, DEFAULT_CALIBRATION, machine.fpga)
    nic = DaggerNic(
        sim, DEFAULT_CALIBRATION, interface, switch, "a",
        hard=NicHardConfig(num_flows=1, reliable_transport=True,
                           flow_control=True),
    )
    registry = MetricsRegistry()
    register_dagger_nic(registry, nic)
    snap = registry.snapshot()["nic.a"]
    assert snap["tx_rpcs"] == 0  # packet monitor
    assert snap["transport.retransmissions"] == 0
    assert snap["flow_control.stalls"] == 0
    assert snap["interconnect.transactions"] == 0


def test_sketch_histogram_matches_exact_within_accuracy():
    registry = MetricsRegistry()
    exact = registry.histogram("rpc", "latency_exact")
    sketch = registry.histogram("rpc", "latency_sketch", mode="sketch")
    for v in range(1, 5001):
        exact.observe(float(v))
        sketch.observe(float(v))
    a, b = exact.summary(), sketch.summary()
    assert b["count"] == a["count"] == 5000
    assert a["mean"] == pytest.approx(b["mean"], rel=1e-9)  # sums exact
    for q in ("p50", "p90", "p99", "min", "max"):
        assert b[q] == pytest.approx(a[q], rel=0.03)


def test_sketch_histogram_memory_is_bounded():
    from repro.obs.registry import Histogram

    hist = Histogram(mode="sketch")
    for v in range(100_000):
        hist.observe(float(v % 977) + 1.0)
    assert hist.samples == []  # nothing retained raw
    assert hist.count == 100_000
    assert len(hist.sketch._buckets) < 1500  # O(accuracy), not O(n)


def test_empty_sketch_histogram_summarizes_to_count_zero():
    from repro.obs.registry import Histogram

    assert Histogram(mode="sketch").summary() == {"count": 0}


def test_histogram_mode_mismatch_rejected():
    registry = MetricsRegistry()
    registry.histogram("rpc", "lat", mode="sketch")
    # Same mode re-request returns the same instance.
    again = registry.histogram("rpc", "lat", mode="sketch")
    assert again is registry.histogram("rpc", "lat", mode="sketch")
    with pytest.raises(ValueError, match="sketch"):
        registry.histogram("rpc", "lat")  # exact vs existing sketch
    with pytest.raises(ValueError):
        registry.histogram("rpc", "other", mode="dense")
    from repro.obs.registry import Histogram

    with pytest.raises(ValueError, match="sketch_accuracy"):
        Histogram(mode="exact", sketch_accuracy=0.01)
