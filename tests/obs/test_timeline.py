"""TimelineCollector, TimeSeries, and bottleneck attribution."""

import math

import pytest

from repro.obs import (
    TimelineCollector,
    TimeSeries,
    attribute_bottleneck,
    find_latency_knee,
    utilization_summary,
)
from repro.sim import SimulationError, Simulator


# -- TimeSeries ----------------------------------------------------------------


def test_series_ring_bound_evicts_oldest():
    series = TimeSeries("c", "depth", max_samples=3)
    for t in range(5):
        series.append(t * 10, t)
    assert len(series) == 3
    assert series.times == [20, 30, 40]
    assert series.values == [2, 3, 4]


def test_series_same_timestamp_overwrites():
    series = TimeSeries("c", "depth")
    series.append(10, 1.0)
    series.append(10, 2.0)
    assert series.times == [10]
    assert series.values == [2.0]


def test_series_rate_and_window_delta():
    series = TimeSeries("c", "bytes", mode="counter")
    series.append(0, 0)
    series.append(100, 50)
    series.append(300, 150)
    assert series.rate() == [(100, 0.5), (300, 0.5)]
    assert series.window_delta() == (300, 150)


def test_series_rate_survives_stop_overwrite():
    # Regression: stop() takes a closing sample at whatever time the sim
    # stopped — which can equal the last periodic sample's timestamp.
    # append() must overwrite (not duplicate) that point and rate() must
    # skip any zero-width interval instead of dividing by it.
    series = TimeSeries("c", "bytes", mode="counter")
    series.append(0, 0)
    series.append(100, 50)
    series.append(100, 60)  # closing sample on the same tick
    assert series.times == [0, 100]
    assert series.values == [0, 60]
    assert series.rate() == [(100, 0.6)]


def test_collector_stop_on_sample_tick_keeps_rate_finite():
    # End-to-end form of the same regression through the collector: stop
    # landing exactly on a sampling tick must not yield a 0-width step.
    sim = Simulator()
    collector = TimelineCollector(sim, interval_ns=100)
    clock = {"v": 0}
    collector.add_probe("c", "bytes", lambda: clock["v"], mode="counter")

    def work():
        for _ in range(5):
            yield 100
            clock["v"] += 50

    sim.spawn(work())
    collector.start()
    sim.run()
    collector.stop()  # sim.now is 500, same tick as the last sample
    series = collector.series()[0]
    assert series.times == sorted(set(series.times))
    rates = series.rate()  # must not divide by a zero-width interval
    assert len(rates) == len(series) - 1
    assert all(math.isfinite(rate) for _, rate in rates)


def test_series_rejects_unknown_mode():
    with pytest.raises(ValueError, match="mode"):
        TimeSeries("c", "x", mode="rate")


def test_series_to_record_shape():
    series = TimeSeries("nic", "depth")
    series.append(5, 2)
    record = series.to_record()
    assert record == {"type": "timeseries", "component": "nic",
                      "name": "depth", "mode": "gauge",
                      "t_ns": [5], "values": [2]}


# -- TimelineCollector ---------------------------------------------------------


def test_collector_validates_arguments():
    sim = Simulator()
    with pytest.raises(ValueError, match="interval_ns"):
        TimelineCollector(sim, interval_ns=0)
    with pytest.raises(ValueError, match="max_samples"):
        TimelineCollector(sim, max_samples=1)


def test_collector_rejects_duplicate_probe():
    collector = TimelineCollector(Simulator())
    collector.add_probe("nic", "depth", lambda: 0)
    with pytest.raises(ValueError, match="duplicate"):
        collector.add_probe("nic", "depth", lambda: 1)


def test_collector_add_source_uses_protocol():
    class Probed:
        def timeline_probes(self):
            return [("a", "gauge", lambda: 1), ("b", "counter", lambda: 2)]

    collector = TimelineCollector(Simulator())
    made = collector.add_source("dev", Probed())
    assert [s.name for s in made] == ["a", "b"]
    assert collector.components() == ["dev"]
    assert collector.get("dev", "b").mode == "counter"


def test_collector_samples_at_interval():
    sim = Simulator()
    collector = TimelineCollector(sim, interval_ns=100)
    state = {"v": 0}
    collector.add_probe("c", "v", lambda: state["v"])

    def workload():
        for step in range(1, 6):
            yield 100
            state["v"] = step

    sim.spawn(workload())
    collector.start()
    sim.run()
    collector.stop()
    series = collector.get("c", "v")
    # Baseline at t=0 plus one sample per 100 ns; closing sample overlaps
    # the last periodic one.
    assert series.times[0] == 0
    assert series.times[-1] == sim.now
    assert len(series) >= 5


def test_sampler_terminates_when_alone():
    """The sampler must not keep an otherwise-finished simulation alive."""
    sim = Simulator()
    collector = TimelineCollector(sim, interval_ns=50)
    collector.add_probe("c", "x", lambda: 0)

    def workload():
        yield 120

    sim.spawn(workload())
    collector.start()
    sim.run()  # returns, i.e. the sampler stopped itself
    assert sim.now <= 200


def test_sampler_preserves_deadlock_detection():
    """run_until_done must still raise when the workload deadlocks."""
    sim = Simulator()
    collector = TimelineCollector(sim, interval_ns=50)
    collector.add_probe("c", "x", lambda: 0)

    def blocked():
        yield sim.event()  # never triggered

    handle = sim.spawn(blocked())
    collector.start()
    with pytest.raises(SimulationError):
        sim.run_until_done(handle)


def test_start_is_idempotent_and_stop_takes_closing_sample():
    sim = Simulator()
    collector = TimelineCollector(sim, interval_ns=1000)
    collector.add_probe("c", "x", lambda: 7)

    def workload():
        yield 250

    sim.spawn(workload())
    collector.start()
    collector.start()
    sim.run()
    collector.stop()
    series = collector.get("c", "x")
    # Baseline at 0; the drain runs to the sampler's next tick (1000),
    # where the sampler takes its last sample and exits.
    assert series.times == [0, 1000]
    assert series.times[-1] == sim.now
    assert collector.to_dict()["interval_ns"] == 1000


# -- utilization + attribution -------------------------------------------------


def test_utilization_summary_reduces_busy_counters():
    collector = TimelineCollector(Simulator())
    busy = collector.add_probe("nic", "pipeline_busy_ns", lambda: 0,
                               mode="counter")
    bare = collector.add_probe("cpu.core0", "busy_ns", lambda: 0,
                               mode="counter")
    gauge = collector.add_probe("nic", "depth", lambda: 0)  # ignored
    counter = collector.add_probe("nic", "tx_bytes", lambda: 0,
                                  mode="counter")  # ignored: not busy_ns
    for t, v in ((0, 0), (1000, 250)):
        busy.append(t, v)
        gauge.append(t, v)
        counter.append(t, v)
    for t, v in ((0, 0), (1000, 900)):
        bare.append(t, v)
    util = utilization_summary(collector)
    assert util == {"nic.pipeline": 0.25, "cpu.core0": 0.9}


def test_find_latency_knee_first_crossing():
    assert find_latency_knee([2.0, 2.1, 2.2, 4.0, 9.0]) == 3
    assert find_latency_knee([2.0, 2.0, 2.0]) == 2  # flat -> last index
    assert find_latency_knee([5.0]) == 0
    with pytest.raises(ValueError):
        find_latency_knee([])


def test_attribute_bottleneck_names_first_saturating():
    points = [
        {"offered_mrps": 1.0, "p99_us": 2.0,
         "utilization": {"nic.fetch": 0.2, "cpu.core0": 0.1}},
        {"offered_mrps": 4.0, "p99_us": 2.2,
         "utilization": {"nic.fetch": 0.6, "cpu.core0": 0.3}},
        {"offered_mrps": 7.0, "p99_us": 6.0,
         "utilization": {"nic.fetch": 0.97, "cpu.core0": 0.5}},
    ]
    report = attribute_bottleneck(points)
    assert report.knee_index == 2
    assert report.knee_load_mrps == 7.0
    assert report.bottleneck == "nic.fetch"
    assert report.bottleneck_utilization == pytest.approx(0.97)
    assert [p["bottleneck"] for p in report.per_point] == ["nic.fetch"] * 3
    assert report.as_dict()["knee_latency_us"] == 6.0


def test_attribute_bottleneck_tie_breaks_toward_prior_busiest():
    points = [
        {"offered_mrps": 1.0, "p99_us": 2.0,
         "utilization": {"a": 0.5, "b": 0.2}},
        {"offered_mrps": 2.0, "p99_us": 9.0,
         "utilization": {"a": 0.9, "b": 0.9}},
    ]
    report = attribute_bottleneck(points)
    assert report.bottleneck == "a"  # already busiest at the prior load


def test_attribute_bottleneck_handles_missing_utilization():
    points = [{"offered_mrps": 1.0, "p99_us": 2.0, "utilization": None}]
    report = attribute_bottleneck(points)
    assert report.bottleneck == "unknown"
