"""breakdown() on incomplete, partial, and warmup-filtered spans."""

from repro.obs import RpcSpan, SpanTracer, breakdown


def _complete_span(rpc_id, start, e2e=1000):
    span = RpcSpan(rpc_id)
    span.events["req_issue"] = start
    span.events["req_sw_tx"] = start + 100
    span.events["resp_complete"] = start + e2e
    return span


def test_incomplete_spans_are_skipped_not_fatal():
    tracer = SpanTracer()
    tracer.record(1, "req_issue", 0)
    tracer.record(1, "resp_complete", 900)
    tracer.record(2, "req_issue", 100)  # dropped in flight: no completion
    tracer.record(3, "handler_start", 300)  # server-only fragment
    result = breakdown(tracer)
    assert result.spans_used == 1
    assert result.spans_skipped == 2
    assert result.e2e.p50_ns == 900


def test_all_incomplete_yields_empty_breakdown():
    tracer = SpanTracer()
    tracer.record(1, "req_issue", 0)
    result = breakdown(tracer)
    assert result.spans_used == 0
    assert result.spans_skipped == 1
    assert result.stages == []
    assert result.e2e is None
    assert result.stage_p50_sum_ns == 0
    assert result.rows() == []


def test_warmup_filters_early_completions():
    spans = [_complete_span(1, 0), _complete_span(2, 5000)]
    result = breakdown(spans, warmup_ns=2000)
    assert result.spans_used == 1
    assert result.spans_skipped == 1


def test_partial_point_sets_make_wider_stages():
    """A span missing intermediate points folds them into one a->b stage
    whose durations still sum to the end-to-end latency."""
    span = RpcSpan(7)
    span.events["req_issue"] = 0
    span.events["req_dispatch"] = 600
    span.events["resp_complete"] = 1000
    result = breakdown([span])
    labels = [s.label for s in result.stages]
    assert labels == ["req_issue -> req_dispatch",
                      "req_dispatch -> resp_complete"]
    assert result.stage_p50_sum_ns == result.e2e.p50_ns == 1000


def test_breakdown_accepts_plain_iterable_of_spans():
    result = breakdown([_complete_span(1, 0), _complete_span(2, 10)])
    assert result.spans_used == 2
    assert result.as_dict()["spans_used"] == 2
