"""Adaptive timeline sampling: widen on flat, tighten on change points."""

import pytest

from repro.obs import TimelineCollector
from repro.sim import Simulator


def _run_scenario(adaptive, shift_at_ns=None, duration_ns=100_000,
                  **kwargs):
    """Drive one gauge through an optional level shift; return collector."""
    sim = Simulator()
    collector = TimelineCollector(sim, interval_ns=1000, adaptive=adaptive,
                                  **kwargs)
    state = {"v": 10.0}
    collector.add_probe("c", "g", lambda: state["v"])

    def mutator():
        if shift_at_ns is not None:
            yield shift_at_ns
            state["v"] = 500.0
            yield duration_ns - shift_at_ns
        else:
            yield duration_ns

    sim.spawn(mutator())
    collector.start()
    sim.run()
    collector.stop()
    return collector


def test_fixed_path_is_default_and_untouched():
    collector = _run_scenario(adaptive=False)
    assert collector.adaptive is False
    assert collector.current_interval_ns == collector.interval_ns
    assert collector.interval_history == []
    assert collector.tightenings == collector.widenings == 0
    assert "adaptive" not in collector.to_dict()


def test_flat_run_widens_and_takes_fewer_samples():
    fixed = _run_scenario(adaptive=False)
    adaptive = _run_scenario(adaptive=True)
    assert adaptive.widenings > 0
    assert adaptive.tightenings == 0  # nothing ever moved
    assert adaptive.current_interval_ns == adaptive.max_interval_ns
    assert len(adaptive.series()[0]) < len(fixed.series()[0])


def test_change_point_tightens_geometrically():
    collector = _run_scenario(adaptive=True, shift_at_ns=50_000)
    assert collector.tightenings >= 1
    # The shift interrupts a widened cadence: some logged interval must
    # be strictly below the one it tightened from (a /4 step).
    intervals = [interval for _, interval in collector.interval_history]
    assert any(b < a for a, b in zip(intervals, intervals[1:]))
    # Every adaptation stays inside the configured envelope.
    assert all(collector.min_interval_ns <= interval
               <= collector.max_interval_ns for interval in intervals)


def test_to_dict_adaptive_block_shape():
    collector = _run_scenario(adaptive=True, shift_at_ns=50_000)
    block = collector.to_dict()["adaptive"]
    assert block["min_interval_ns"] == collector.min_interval_ns
    assert block["max_interval_ns"] == collector.max_interval_ns
    assert block["final_interval_ns"] == collector.current_interval_ns
    assert block["tightenings"] == collector.tightenings
    assert block["widenings"] == collector.widenings
    assert block["interval_history"] == [
        list(entry) if isinstance(entry, tuple) else entry
        for entry in collector.interval_history
    ]


def test_bounds_default_to_eighth_and_eightfold():
    collector = TimelineCollector(Simulator(), interval_ns=1600,
                                  adaptive=True)
    assert collector.min_interval_ns == 200
    assert collector.max_interval_ns == 12_800


def test_adaptive_validation_errors():
    sim = Simulator()
    with pytest.raises(ValueError, match="min_interval_ns"):
        TimelineCollector(sim, interval_ns=1000, adaptive=True,
                          min_interval_ns=2000)
    with pytest.raises(ValueError, match="max_interval_ns"):
        TimelineCollector(sim, interval_ns=1000, adaptive=True,
                          max_interval_ns=500)
    with pytest.raises(ValueError, match="flat_threshold"):
        TimelineCollector(sim, adaptive=True, flat_threshold=0)
    with pytest.raises(ValueError, match="flat_streak"):
        TimelineCollector(sim, adaptive=True, flat_streak=0)


def test_oscillating_gauge_does_not_pin_min_interval():
    # A noisy-but-steady probe inflates its own window stddev, so the
    # 3-sigma test reads it as flat and the sampler still widens.
    sim = Simulator()
    collector = TimelineCollector(sim, interval_ns=1000, adaptive=True)
    state = {"i": 0}
    collector.add_probe("c", "osc",
                        lambda: 5.0 + (3.0 if state["i"] % 2 else -3.0))

    def mutator():
        for _ in range(100):
            yield 1000
            state["i"] += 1

    sim.spawn(mutator())
    collector.start()
    sim.run()
    collector.stop()
    assert collector.current_interval_ns > collector.min_interval_ns
