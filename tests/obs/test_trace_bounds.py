"""SpanTracer memory-bound modes: max_spans ring + drain (ISSUE 3 sat a)."""

import pytest

from repro.obs import SpanTracer, breakdown


def test_default_is_unbounded():
    tracer = SpanTracer()
    for rpc_id in range(1000):
        tracer.record(rpc_id, "req_issue", rpc_id)
    assert len(tracer) == 1000
    assert tracer.spans_evicted == 0


def test_max_spans_evicts_oldest_fifo():
    tracer = SpanTracer(max_spans=3)
    for rpc_id in range(5):
        tracer.record(rpc_id, "req_issue", rpc_id * 10)
    assert len(tracer) == 3
    assert [s.rpc_id for s in tracer.spans()] == [2, 3, 4]
    assert tracer.spans_evicted == 2
    assert tracer.span(0) is None


def test_max_spans_updating_existing_span_does_not_evict():
    tracer = SpanTracer(max_spans=2)
    tracer.record(1, "req_issue", 0)
    tracer.record(2, "req_issue", 10)
    tracer.record(1, "resp_complete", 500)  # existing span, no new entry
    assert len(tracer) == 2
    assert tracer.spans_evicted == 0
    assert tracer.span(1).complete


def test_max_spans_validation():
    with pytest.raises(ValueError, match="max_spans"):
        SpanTracer(max_spans=0)


def test_drain_consumes_spans_keeps_transfers_and_counter():
    tracer = SpanTracer(max_spans=2)
    tracer.record_transfer("upi", 4, 100)
    for rpc_id in range(3):
        tracer.record(rpc_id, "req_issue", rpc_id)
    drained = tracer.drain()
    assert [s.rpc_id for s in drained] == [1, 2]
    assert len(tracer) == 0
    assert tracer.spans_evicted == 1          # survives drain
    assert tracer.transfers["upi"]["lines"] == 4  # survives drain
    assert tracer.drain() == []


def test_drain_streaming_bounds_memory_across_batches():
    tracer = SpanTracer()
    seen = []
    for batch in range(4):
        for i in range(10):
            rpc_id = batch * 10 + i
            tracer.record(rpc_id, "req_issue", rpc_id)
            tracer.record(rpc_id, "resp_complete", rpc_id + 5)
        seen.extend(tracer.drain())
        assert len(tracer) == 0
    assert len(seen) == 40
    # Drained spans still feed breakdown() (it accepts iterables of spans).
    result = breakdown(seen)
    assert result.spans_used == 40


def test_clear_resets_eviction_counter():
    tracer = SpanTracer(max_spans=1)
    tracer.record(1, "req_issue", 0)
    tracer.record(2, "req_issue", 1)
    assert tracer.spans_evicted == 1
    tracer.clear()
    assert tracer.spans_evicted == 0
    assert len(tracer) == 0
