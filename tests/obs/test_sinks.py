"""Tests for the in-memory and JSON-lines sinks."""

import json

import pytest

from repro.obs import (
    InMemorySink,
    JsonLinesSink,
    MetricsRegistry,
    SpanTracer,
    dump_metrics,
    dump_trace,
)


def make_tracer():
    tracer = SpanTracer()
    tracer.record(1, "req_issue", 0)
    tracer.record(1, "resp_complete", 1000)
    tracer.record(2, "req_issue", 50)
    tracer.record_transfer("upi", 3, 400)
    return tracer


def test_dump_trace_to_memory():
    sink = InMemorySink()
    emitted = dump_trace(make_tracer(), sink)
    assert emitted == 3  # two spans + one transfer aggregate
    assert len(sink) == 3
    types = [r["type"] for r in sink.records]
    assert types == ["span", "span", "transfer"]
    assert sink.records[0]["rpc_id"] == 1
    assert sink.records[2]["component"] == "upi"
    assert sink.records[2]["lines"] == 3


def test_dump_metrics_record_shape():
    registry = MetricsRegistry()
    registry.counter("nic", "drops").inc(2)
    sink = InMemorySink()
    dump_metrics(registry, sink)
    assert sink.records == [
        {"type": "metrics", "snapshot": {"nic": {"drops": 2}}}
    ]


def test_jsonl_sink_writes_parseable_lines(tmp_path):
    path = str(tmp_path / "trace.jsonl")
    with JsonLinesSink(path) as sink:
        dump_trace(make_tracer(), sink)
    lines = open(path).read().splitlines()
    assert len(lines) == 3
    records = [json.loads(line) for line in lines]
    assert records[0]["events"]["resp_complete"] == 1000
    assert records[2]["type"] == "transfer"


def test_jsonl_sink_rejects_emit_after_close(tmp_path):
    sink = JsonLinesSink(str(tmp_path / "t.jsonl"))
    sink.close()
    with pytest.raises(ValueError):
        sink.emit({"type": "span"})


def test_jsonl_sink_on_open_stream_does_not_close_it(tmp_path):
    with open(tmp_path / "t.jsonl", "w") as fh:
        sink = JsonLinesSink(fh)
        sink.emit({"a": 1})
        sink.close()
        assert not fh.closed
