"""Tests for the Fig 3-style breakdown, including the end-to-end smoke test
the tentpole's acceptance criterion names: with tracing enabled on a
dagger/UPI echo run, the per-stage table's p50s must sum to within 5% of
the measured end-to-end p50.
"""

from repro.obs import RpcSpan, SpanTracer, breakdown
from repro.obs.breakdown import STAGES
from repro.obs.trace import CANONICAL_POINTS


def full_span(rpc_id, start, step=100):
    span = RpcSpan(rpc_id)
    for i, point in enumerate(CANONICAL_POINTS):
        span.events[point] = start + i * step
    return span


def test_full_span_produces_canonical_stage_labels():
    bd = breakdown([full_span(1, 0)])
    assert [s.label for s in bd.stages] == [label for _, _, label in STAGES]
    assert all(s.p50_ns == 100 for s in bd.stages)
    assert bd.spans_used == 1
    assert bd.e2e.p50_ns == 100 * (len(CANONICAL_POINTS) - 1)
    # Contiguous stages always sum exactly to the end-to-end latency.
    assert bd.stage_p50_sum_ns == bd.e2e.p50_ns


def test_missing_points_merge_into_wider_stages():
    span = RpcSpan(1)
    span.events["req_issue"] = 0
    span.events["req_dispatch"] = 700
    span.events["resp_complete"] = 1000
    bd = breakdown([span])
    assert [s.label for s in bd.stages] == [
        "req_issue -> req_dispatch",
        "req_dispatch -> resp_complete",
    ]
    assert [s.p50_ns for s in bd.stages] == [700, 300]
    assert bd.stage_p50_sum_ns == bd.e2e.p50_ns == 1000


def test_incomplete_spans_are_skipped():
    incomplete = RpcSpan(2)
    incomplete.events["req_issue"] = 0  # never completed (dropped)
    bd = breakdown([full_span(1, 0), incomplete])
    assert bd.spans_used == 1
    assert bd.spans_skipped == 1


def test_warmup_filter_matches_latency_recorder_semantics():
    early = full_span(1, 0)
    late = full_span(2, 1_000_000)
    bd = breakdown([early, late], warmup_ns=500_000)
    assert bd.spans_used == 1
    assert bd.spans_skipped == 1


def test_breakdown_accepts_a_tracer():
    tracer = SpanTracer()
    for point, t in full_span(9, 0).events.items():
        tracer.record(9, point, t)
    bd = breakdown(tracer)
    assert bd.spans_used == 1


def test_as_dict_is_json_friendly():
    import json

    bd = breakdown([full_span(1, 0)])
    payload = json.dumps(bd.as_dict())
    assert "stage_p50_sum_ns" in payload


def test_dagger_upi_breakdown_sums_to_e2e_p50():
    """Acceptance criterion: stage p50 sum within 5% of measured e2e p50."""
    from repro.harness.runner import EchoRig

    rig = EchoRig(stack_name="dagger", interface="upi", trace=True)
    result = rig.closed_loop(window=4, nreq=1500)
    bd = result.breakdown
    assert bd is not None
    assert bd.spans_used > 0
    # Every canonical stage shows up on a fully-hooked Dagger run.
    assert [s.label for s in bd.stages] == [label for _, _, label in STAGES]
    e2e_p50 = result.p50_us * 1000.0
    assert abs(bd.stage_p50_sum_ns - e2e_p50) / e2e_p50 < 0.05
    # The registry snapshot rode along on the result.
    assert result.metrics is not None
    assert result.metrics["nic.client"]["tx_rpcs"] >= 1500
    assert result.metrics["nic.server"]["interconnect.transactions"] > 0


def test_untraced_run_carries_no_breakdown():
    from repro.harness.runner import EchoRig

    rig = EchoRig(stack_name="dagger", interface="upi")
    result = rig.closed_loop(window=4, nreq=200, warmup_ns=0)
    assert result.breakdown is None
    assert result.metrics is None
    assert rig.tracer is None
