"""load_trace round-trips and error handling (ISSUE 3 sats b/c)."""

import pytest

from repro.obs import (
    JsonLinesSink,
    MetricsRegistry,
    SpanTracer,
    TimelineCollector,
    TraceFileError,
    breakdown,
    dump_metrics,
    dump_timeline,
    dump_trace,
    load_trace,
)
from repro.sim import Simulator


def _write_trace(path):
    tracer = SpanTracer()
    tracer.record(1, "req_issue", 0)
    tracer.record(1, "req_sw_tx", 120)
    tracer.record(1, "resp_complete", 1000)
    tracer.record(2, "req_issue", 50)  # incomplete span round-trips too
    tracer.record_transfer("upi", 3, 400)
    registry = MetricsRegistry()
    registry.counter("nic", "drops").inc(2)
    collector = TimelineCollector(Simulator())
    series = collector.add_probe("nic", "rx_depth", lambda: 0)
    series.append(0, 1)
    series.append(1000, 4)
    with JsonLinesSink(str(path)) as sink:
        dump_trace(tracer, sink)
        dump_metrics(registry, sink)
        dump_timeline(collector, sink)
    return str(path)


def test_round_trip_spans_transfers_metrics_timeseries(tmp_path):
    path = _write_trace(tmp_path / "trace.jsonl")
    data = load_trace(path)
    assert [s.rpc_id for s in data["spans"]] == [1, 2]
    assert data["spans"][0].events["req_sw_tx"] == 120
    assert data["transfers"]["upi"]["lines"] == 3
    assert data["transfers"]["upi"]["transactions"] == 1
    assert data["metrics"] == [{"nic": {"drops": 2}}]
    assert data["timeseries"][0]["name"] == "rx_depth"
    assert data["timeseries"][0]["values"] == [1, 4]


def test_loaded_spans_feed_breakdown(tmp_path):
    data = load_trace(_write_trace(tmp_path / "trace.jsonl"))
    result = breakdown(data["spans"], warmup_ns=0)
    assert result.spans_used == 1
    assert result.e2e.p50_ns == 1000


def test_missing_file_raises_trace_file_error(tmp_path):
    with pytest.raises(TraceFileError, match="cannot read"):
        load_trace(str(tmp_path / "does-not-exist.jsonl"))


def test_corrupt_json_names_path_and_line(tmp_path):
    path = tmp_path / "bad.jsonl"
    path.write_text('{"type": "span", "rpc_id": 1, "events": {}}\n{not json\n')
    with pytest.raises(TraceFileError, match=r"bad\.jsonl:2: not valid JSON"):
        load_trace(str(path))


def test_non_object_record_rejected(tmp_path):
    path = tmp_path / "bad.jsonl"
    path.write_text("[1, 2, 3]\n")
    with pytest.raises(TraceFileError, match="expected an object"):
        load_trace(str(path))


def test_record_missing_type_rejected(tmp_path):
    path = tmp_path / "bad.jsonl"
    path.write_text('{"rpc_id": 1}\n')
    with pytest.raises(TraceFileError, match="'type' key"):
        load_trace(str(path))


def test_malformed_span_record_names_line(tmp_path):
    path = tmp_path / "bad.jsonl"
    path.write_text('{"type": "span", "rpc_id": 1}\n')
    with pytest.raises(TraceFileError, match=r"bad\.jsonl:1: malformed 'span'"):
        load_trace(str(path))


def test_unknown_record_types_are_skipped(tmp_path):
    path = tmp_path / "trace.jsonl"
    path.write_text(
        '{"type": "future-extension", "payload": 1}\n'
        '\n'  # blank lines are fine
        '{"type": "span", "rpc_id": 9, "events": {"req_issue": 0}}\n'
    )
    data = load_trace(str(path))
    assert [s.rpc_id for s in data["spans"]] == [9]
