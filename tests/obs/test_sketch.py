"""QuantileSketch / MomentSketch: accuracy bounds, merging, serialization.

The accuracy tests are property-style: for a set of adversarial
distributions (bimodal, heavy-tail, constant, zero-inflated) the sketch's
quantiles must sit within its configured relative-error bound of the
exact :func:`repro.sim.stats.percentile` answer. Sample counts are chosen
so the checked percentile ranks are integral (rank = pct/100 * (n-1)),
where the exact answer is a real sample and the DDSketch bound applies
without interpolation slack.
"""

import json
import math
import random

import pytest

from repro.obs import (
    DEFAULT_RELATIVE_ACCURACY,
    MomentSketch,
    QuantileSketch,
    merge_quantile_sketches,
)
from repro.sim.stats import percentile

#: Percentiles with integral ranks for the 101/1001-sample streams below.
CHECKED_PCTS = (0, 10, 50, 90, 99, 100)


def _distributions():
    rng = random.Random(0xDA66E4)
    yield "constant", [42.0] * 101
    yield "two-point bimodal", [10.0] * 50 + [10_000.0] * 51
    yield "interleaved bimodal", [
        rng.uniform(90, 110) if i % 2 else rng.uniform(90_000, 110_000)
        for i in range(1001)
    ]
    yield "heavy tail (lognormal)", [
        math.exp(rng.gauss(3.0, 2.0)) for i in range(1001)
    ]
    yield "zero-inflated", [0.0] * 300 + [
        rng.uniform(1.0, 1000.0) for i in range(701)
    ]
    yield "six orders of magnitude", [
        10.0 ** rng.uniform(0, 6) for i in range(1001)
    ]


@pytest.mark.parametrize("name,samples",
                         list(_distributions()),
                         ids=lambda v: v if isinstance(v, str) else "")
def test_quantiles_within_relative_error_bound(name, samples):
    sketch = QuantileSketch()
    sketch.extend(samples)
    data = sorted(samples)
    for pct in CHECKED_PCTS:
        exact = percentile(data, pct, presorted=True)
        got = sketch.quantile(pct)
        assert abs(got - exact) <= DEFAULT_RELATIVE_ACCURACY * exact + 1e-9, (
            f"{name}: p{pct} sketch={got} exact={exact}"
        )


@pytest.mark.parametrize("shards", [2, 3, 7])
@pytest.mark.parametrize("name,samples",
                         list(_distributions()),
                         ids=lambda v: v if isinstance(v, str) else "")
def test_sharded_merge_equals_global_sketch(name, samples, shards):
    whole = QuantileSketch()
    whole.extend(samples)
    parts = [QuantileSketch() for _ in range(shards)]
    for i, value in enumerate(samples):
        parts[i % shards].add(value)
    merged = merge_quantile_sketches(parts)
    # Lossless merge: bucket-for-bucket identical to one sketch fed the
    # whole stream. Only the exact `sum` float can differ (addition
    # order), and then only by ulps.
    merged_record, whole_record = merged.to_record(), whole.to_record()
    assert merged_record.pop("sum") == pytest.approx(
        whole_record.pop("sum"), rel=1e-12)
    assert merged_record == whole_record
    for pct in CHECKED_PCTS:
        assert merged.quantile(pct) == whole.quantile(pct)


def test_memory_bounded_by_value_range_not_sample_count():
    rng = random.Random(7)
    sketch = QuantileSketch()
    for _ in range(200_000):
        sketch.add(rng.uniform(100.0, 100_000.0))
    # Buckets cover [100, 1e5]: about log_gamma(1e3) ~ 346 of them at the
    # default 1% accuracy, however many samples streamed through.
    expected = math.log(1_000.0) / math.log((1.01) / (0.99))
    assert sketch.bucket_count <= expected + 2
    assert sketch.count == 200_000


def test_exact_fields_carry_no_sketch_error():
    values = [5.0, 1.0, 3.0, 0.0, 11.5]
    sketch = QuantileSketch()
    sketch.extend(values)
    assert sketch.count == len(values)
    assert sketch.min == 0.0
    assert sketch.max == 11.5
    assert sketch.mean == pytest.approx(sum(values) / len(values))
    assert sketch.quantile(0) == 0.0
    assert sketch.quantile(100) == 11.5


def test_add_with_multiplicity_matches_repeats():
    a = QuantileSketch()
    b = QuantileSketch()
    a.add(7.5, n=40)
    for _ in range(40):
        b.add(7.5)
    assert a.to_record() == b.to_record()


def test_validation_errors():
    sketch = QuantileSketch()
    with pytest.raises(ValueError, match="relative_accuracy"):
        QuantileSketch(relative_accuracy=1.5)
    with pytest.raises(ValueError, match=">= 0"):
        sketch.add(-1.0)
    with pytest.raises(ValueError, match="n must be"):
        sketch.add(1.0, n=0)
    with pytest.raises(ValueError, match="empty"):
        sketch.quantile(50)
    with pytest.raises(ValueError, match="empty"):
        sketch.mean
    sketch.add(1.0)
    with pytest.raises(ValueError, match="percentile"):
        sketch.quantile(101)
    with pytest.raises(ValueError, match="accuracies"):
        sketch.merge(QuantileSketch(relative_accuracy=0.05))
    with pytest.raises(ValueError, match="no sketches"):
        QuantileSketch.merged([])


def test_quantile_record_round_trip():
    sketch = QuantileSketch(relative_accuracy=0.02)
    sketch.extend([0.0, 3.0, 900.0, 3.0])
    record = json.loads(json.dumps(sketch.to_record()))
    restored = QuantileSketch.from_record(record)
    assert restored.to_record() == sketch.to_record()
    assert restored.quantile(50) == sketch.quantile(50)
    with pytest.raises(ValueError, match="quantile_sketch"):
        QuantileSketch.from_record({"type": "timeseries"})


def test_moment_sketch_moments_and_merge():
    rng = random.Random(3)
    values = [rng.gauss(50.0, 12.0) for _ in range(500)]
    whole = MomentSketch()
    left, right = MomentSketch(), MomentSketch()
    for i, value in enumerate(values):
        whole.add(value)
        (left if i % 2 else right).add(value)
    mean = sum(values) / len(values)
    variance = sum((v - mean) ** 2 for v in values) / len(values)
    assert whole.mean == pytest.approx(mean)
    assert whole.variance == pytest.approx(variance)
    assert whole.stddev == pytest.approx(math.sqrt(variance))
    merged = left.merge(right)
    assert merged.count == whole.count
    assert merged.mean == pytest.approx(whole.mean)
    assert merged.variance == pytest.approx(whole.variance)


def test_moment_sketch_record_round_trip():
    sketch = MomentSketch()
    sketch.add(2.0, n=3)
    sketch.add(-1.0)
    restored = MomentSketch.from_record(
        json.loads(json.dumps(sketch.to_record())))
    assert restored.to_record() == sketch.to_record()
    assert restored.min == -1.0 and restored.max == 2.0
    with pytest.raises(ValueError, match="moment_sketch"):
        MomentSketch.from_record({"type": "quantile_sketch"})


def test_constant_stream_variance_guard_stays_nonnegative():
    sketch = MomentSketch()
    for _ in range(1000):
        sketch.add(1e9 + 0.1)  # float cancellation territory
    assert sketch.variance >= 0.0
    # Sum-of-squares keeps ~1e-7 relative precision at this scale; the
    # guard's contract is only that cancellation never goes negative.
    assert sketch.stddev <= 1e-6 * sketch.mean
