"""Chrome trace-event / Perfetto export: event schema and track layout."""

import io
import json

from repro.obs import (
    SpanTracer,
    TimelineCollector,
    chrome_trace_events,
    export_chrome_trace,
)
from repro.obs.chrome_trace import PIPELINE_PID, TELEMETRY_PID, TRACKS
from repro.sim import Simulator


def make_tracer():
    tracer = SpanTracer()
    tracer.record(1, "req_issue", 0)
    tracer.record(1, "req_sw_tx", 40)
    tracer.record(1, "resp_complete", 2000)  # gap -> merged "other" slice
    tracer.record(2, "req_issue", 500)
    tracer.record(2, "req_sw_tx", 560)  # incomplete span still renders
    return tracer


def make_collector():
    collector = TimelineCollector(Simulator())
    busy = collector.add_probe("nic", "pipeline_busy_ns", lambda: 0,
                               mode="counter")
    depth = collector.add_probe("nic", "rx_depth", lambda: 0)
    for t, v in ((0, 0), (1000, 400), (2000, 1400)):
        busy.append(t, v)
        depth.append(t, v // 100)
    return collector


def _validate_event_schema(event):
    assert event["ph"] in ("M", "X", "C", "s", "t", "f")
    assert isinstance(event["pid"], int)
    assert isinstance(event["tid"], int)
    assert isinstance(event["name"], str)
    if event["ph"] in ("X", "C", "s", "t", "f"):
        assert isinstance(event["ts"], float)
    if event["ph"] == "X":
        assert isinstance(event["dur"], float)
        assert event["dur"] >= 0
        assert "rpc_id" in event["args"]
    if event["ph"] == "C":
        assert isinstance(event["args"]["value"], (int, float))
    if event["ph"] in ("s", "t", "f"):
        assert isinstance(event["id"], int)
    if event["ph"] == "f":
        assert event["bp"] == "e"


def test_events_validate_and_cover_all_kinds():
    events = chrome_trace_events(make_tracer(), make_collector())
    kinds = {e["ph"] for e in events}
    assert kinds == {"M", "X", "C", "s", "f"}
    for event in events:
        _validate_event_schema(event)


def test_metadata_names_processes_and_tracks():
    events = chrome_trace_events(make_tracer())
    meta = [e for e in events if e["ph"] == "M"]
    names = {e["args"]["name"] for e in meta if e["name"] == "thread_name"}
    assert names == set(TRACKS)
    processes = {e["args"]["name"] for e in meta
                 if e["name"] == "process_name"}
    assert processes == {"RPC pipeline", "telemetry"}


def test_slice_events_land_on_pipeline_tracks_in_us():
    events = chrome_trace_events(make_tracer())
    slices = [e for e in events if e["ph"] == "X"]
    assert slices, "expected at least one slice"
    first = next(e for e in slices if e["args"]["rpc_id"] == 1)
    assert first["pid"] == PIPELINE_PID
    assert first["name"] == "client tx (CPU)"
    assert first["ts"] == 0.0
    assert first["dur"] == 0.04  # 40 ns -> 0.04 us
    # The non-adjacent req_sw_tx -> resp_complete gap lands on "other".
    other = next(e for e in slices if e["name"] == "req_sw_tx -> resp_complete")
    assert TRACKS[other["tid"]] == "other"


def test_counter_tracks_rate_and_gauge():
    events = chrome_trace_events(collector=make_collector())
    counters = [e for e in events if e["ph"] == "C"]
    assert all(e["pid"] == TELEMETRY_PID for e in counters)
    by_name = {}
    for e in counters:
        by_name.setdefault(e["name"], []).append(e)
    # busy_ns counter renamed to a utilization track, exported as rate.
    util = by_name["nic.pipeline utilization"]
    assert [e["args"]["value"] for e in util] == [0.4, 1.0]
    # gauge exported raw, including the baseline sample.
    gauge = by_name["nic.rx_depth"]
    assert [e["args"]["value"] for e in gauge] == [0, 4, 14]


def test_flow_events_link_slices_across_tracks():
    events = chrome_trace_events(make_tracer())
    flows = [e for e in events if e["ph"] in ("s", "t", "f")]
    # Span 1 hops client CPU -> other (2 tracks): one "s"/"f" pair.
    # Span 2 has a single slice: no arrow to draw, no flow events.
    assert [e["ph"] for e in flows] == ["s", "f"]
    assert all(e["id"] == 1 for e in flows)
    assert all(e["name"] == "rpc flow" for e in flows)
    start, finish = flows
    assert TRACKS[start["tid"]] == "client CPU"
    assert start["ts"] == 0.0
    assert TRACKS[finish["tid"]] == "other"
    assert finish["ts"] == 0.04
    assert finish["bp"] == "e"  # bind to enclosing slice


def test_flow_chain_walks_full_pipeline():
    from repro.obs.trace import CANONICAL_POINTS

    tracer = SpanTracer()
    for i, point in enumerate(CANONICAL_POINTS):
        tracer.record(7, point, i * 100)
    flows = [e for e in chrome_trace_events(tracer)
             if e["ph"] in ("s", "t", "f")]
    # client CPU -> client NIC -> wire -> server NIC -> server CPU ->
    # server NIC -> wire -> client NIC -> client CPU: 9 hops.
    assert [e["ph"] for e in flows] == ["s"] + ["t"] * 7 + ["f"]
    walked = [TRACKS[e["tid"]] for e in flows]
    assert walked == [
        "client CPU", "NIC (client)", "wire", "NIC (server)", "server CPU",
        "NIC (server)", "wire", "NIC (client)", "client CPU",
    ]
    # Each flow point binds inside its slice: timestamps strictly climb.
    timestamps = [e["ts"] for e in flows]
    assert timestamps == sorted(timestamps)
    assert len(set(timestamps)) == len(timestamps)


def test_max_spans_keeps_most_recent():
    events = chrome_trace_events(make_tracer(), max_spans=1)
    rpc_ids = {e["args"]["rpc_id"] for e in events if e["ph"] == "X"}
    assert rpc_ids == {2}


def test_export_to_stream_and_path(tmp_path):
    buffer = io.StringIO()
    count = export_chrome_trace(buffer, make_tracer(), make_collector())
    document = json.loads(buffer.getvalue())
    assert set(document) == {"traceEvents", "displayTimeUnit"}
    assert len(document["traceEvents"]) == count
    path = str(tmp_path / "trace.json")
    assert export_chrome_trace(path, make_tracer()) > 0
    assert json.load(open(path))["displayTimeUnit"] == "ns"
