"""Unit tests for the workload/dataset generators."""

import pytest

from repro.workloads import (
    DATASETS,
    MEDIA_SIZES,
    SOCIAL_NETWORK_SIZES,
    WORKLOAD_MIXES,
    request_size_cdf,
    sample_sizes,
)
from repro.workloads.kv_datasets import DEFAULT_SKEW, HIGH_SKEW


# ----------------------------------------------------------------- sizes


def test_fig4_headline_cdf_points():
    requests, responses = sample_sizes(SOCIAL_NETWORK_SIZES, 2000)
    assert request_size_cdf(requests, 512) >= 0.75
    assert request_size_cdf(responses, 64) >= 0.90


def test_per_tier_medians():
    assert SOCIAL_NETWORK_SIZES["text"].median_request() == 580
    for tier in ("media", "user", "unique_id"):
        assert SOCIAL_NETWORK_SIZES[tier].median_request() <= 64


def test_small_tiers_never_exceed_64b():
    # "the Media, User, and UniqueID services never have RPCs larger than
    # 64B" (§3.2).
    for tier in ("media", "user", "unique_id"):
        sizes = SOCIAL_NETWORK_SIZES[tier]
        assert max(v for v, _ in sizes.request_points) <= 64


def test_media_sizes_present_and_sane():
    requests, responses = sample_sizes(MEDIA_SIZES, 1000)
    assert request_size_cdf(responses, 64) >= 0.90
    assert MEDIA_SIZES["review_text"].median_request() >= 512


def test_distributions_sample_declared_points():
    sizes = SOCIAL_NETWORK_SIZES["text"]
    dist = sizes.request_dist(rng=1)
    declared = {v for v, _ in sizes.request_points}
    assert all(dist.sample() in declared for _ in range(200))


def test_cdf_empty_rejected():
    with pytest.raises(ValueError):
        request_size_cdf([], 64)


# --------------------------------------------------------------- datasets


def test_dataset_shapes():
    tiny = DATASETS["tiny"]
    small = DATASETS["small"]
    assert (tiny.key_bytes, tiny.value_bytes) == (8, 8)
    assert (small.key_bytes, small.value_bytes) == (16, 32)
    assert tiny.num_keys("mica") == 200_000_000
    assert tiny.num_keys("memcached") == 10_000_000


def test_dataset_unknown_system():
    with pytest.raises(ValueError):
        DATASETS["tiny"].num_keys("redis")


def test_mixes():
    assert WORKLOAD_MIXES["write-intensive"] == 0.50
    assert WORKLOAD_MIXES["read-intensive"] == 0.95
    assert DEFAULT_SKEW == 0.99
    assert HIGH_SKEW == 0.9999
