"""Session-based open-loop generator (repro.workloads.sessions)."""

import pytest

from repro.workloads.sessions import (
    BurstModulation,
    DiurnalModulation,
    MODULATIONS,
    SessionWorkload,
    SteadyModulation,
    make_modulation,
    session_key,
)


def test_session_key_is_stable_and_32bit():
    # Pure function of the rank: pinned values guard against accidental
    # PYTHONHASHSEED-style process dependence.
    assert session_key(0) == 0x9E3779B9
    assert session_key(1) == (2654435761 + 0x9E3779B9) & 0xFFFFFFFF
    for rank in (0, 1, 7, 123456, 999_999):
        key = session_key(rank)
        assert 0 <= key <= 0xFFFFFFFF
        assert key == session_key(rank)


def test_same_seed_same_arrivals():
    a = SessionWorkload(peak_rate_krps=50.0, seed=7).take(500)
    b = SessionWorkload(peak_rate_krps=50.0, seed=7).take(500)
    assert a == b


def test_different_seeds_differ():
    a = SessionWorkload(peak_rate_krps=50.0, seed=7).take(200)
    b = SessionWorkload(peak_rate_krps=50.0, seed=8).take(200)
    assert a != b


def test_arrival_times_strictly_forward_and_keys_match_sessions():
    arrivals = SessionWorkload(peak_rate_krps=100.0, seed=3).take(1000)
    last = -1
    for arrival in arrivals:
        assert arrival.t_ns >= last
        last = arrival.t_ns
        assert arrival.key == session_key(arrival.session)
        assert arrival.method == "handle"


def test_zipf_skew_concentrates_on_hot_sessions():
    arrivals = SessionWorkload(num_sessions=1_000_000,
                               peak_rate_krps=100.0,
                               skew_theta=0.99, seed=5).take(4000)
    hot = sum(1 for a in arrivals if a.session < 100)
    # Zipf(0.99) over 1M sessions: the top-100 ranks carry roughly a
    # third of the mass; uniform would give 100/1M = 0.01%.
    assert hot / len(arrivals) > 0.2


def test_method_mix_respected():
    mix = {"read": 0.8, "write": 0.2}
    arrivals = SessionWorkload(peak_rate_krps=100.0, method_mix=mix,
                               seed=4).take(3000)
    reads = sum(1 for a in arrivals if a.method == "read")
    assert 0.7 < reads / len(arrivals) < 0.9


def test_mix_validation():
    with pytest.raises(ValueError):
        SessionWorkload(method_mix={"a": -1.0})
    with pytest.raises(ValueError):
        SessionWorkload(method_mix={"a": 0.0})
    with pytest.raises(ValueError):
        SessionWorkload(num_sessions=0)
    with pytest.raises(ValueError):
        SessionWorkload(peak_rate_krps=0.0)


def test_diurnal_factor_bounds_and_cycle():
    mod = DiurnalModulation(period_ns=20_000_000, low=0.25)
    values = [mod.factor(t) for t in range(0, 40_000_000, 500_000)]
    assert all(0.25 <= v <= 1.0 for v in values)
    assert max(values) > 0.95  # touches the peak
    assert min(values) < 0.3  # and the trough
    # Periodic: one full cycle apart gives the same factor.
    assert mod.factor(3_000_000) == pytest.approx(mod.factor(23_000_000))


def test_burst_modulation_deterministic_and_monotonic_guard():
    a = BurstModulation(2_000_000, 4_000_000, off_factor=0.2, seed=9)
    b = BurstModulation(2_000_000, 4_000_000, off_factor=0.2, seed=9)
    times = range(0, 30_000_000, 250_000)
    assert [a.factor(t) for t in times] == [b.factor(t) for t in times]
    with pytest.raises(ValueError):
        a.factor(0)  # backwards in time


def test_burst_modulation_actually_toggles():
    mod = BurstModulation(2_000_000, 4_000_000, off_factor=0.2, seed=9)
    values = {mod.factor(t) for t in range(0, 60_000_000, 100_000)}
    assert values == {1.0, 0.2}


def test_bursty_stream_slower_than_steady():
    steady = SessionWorkload(peak_rate_krps=100.0, seed=2).take(2000)
    bursty = SessionWorkload(peak_rate_krps=100.0, seed=2,
                             modulation=make_modulation("bursty",
                                                        seed=3)).take(2000)
    # Thinning only removes candidates: same count takes longer.
    assert bursty[-1].t_ns > steady[-1].t_ns


def test_make_modulation_names():
    for name in MODULATIONS:
        assert make_modulation(name, seed=1) is not None
    assert isinstance(make_modulation("steady"), SteadyModulation)
    with pytest.raises(ValueError):
        make_modulation("square-wave")
