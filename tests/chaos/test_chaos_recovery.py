"""End-to-end recovery properties under seeded fault schedules.

The invariants the chaos harness exists to enforce, checked on a real
NIC pair over a faulty switch:

- **no crash**: every schedule runs to completion;
- **exactly-once at the host**: whatever the wire does (loss, bursts,
  reordering, duplication), each packet reaches the receiving host once;
- **no permanent stall**: the simulation terminates — recovery never
  livelocks;
- **exact accounting**: delivered + unrecoverable == sent.

Plus the measurement rig's own contract: ``run_chaos_point`` is
bit-identical across two runs of the same seed.
"""

import json
from types import SimpleNamespace

import pytest

from repro.chaos import ChaosConfig, ChaosInjector, WireFaults
from repro.chaos.rig import run_chaos_point
from repro.hw.calibration import DEFAULT_CALIBRATION
from repro.hw.interconnect.ccip import make_interface
from repro.hw.nic.config import NicHardConfig, NicSoftConfig
from repro.hw.nic.dagger_nic import DaggerNic
from repro.hw.platform import Machine
from repro.hw.switch import ToRSwitch
from repro.rpc.messages import RpcKind, RpcPacket
from repro.sim import Simulator

CAL = DEFAULT_CALIBRATION
NPKT = 60


def faulty_pair(wire, seed=3):
    sim = Simulator()
    machine = Machine(sim)
    switch = ToRSwitch(sim, CAL, loopback=True)
    injector = ChaosInjector(sim, ChaosConfig(seed=seed, wire=wire))
    injector.attach(switch)
    hard = NicHardConfig(num_flows=1, rx_ring_entries=64,
                         reliable_transport=True)
    nics = []
    for name in ("a", "b"):
        interface = make_interface("upi", sim, CAL, machine.fpga)
        nics.append(DaggerNic(sim, CAL, interface, switch, name, hard=hard,
                              soft=NicSoftConfig()))
    a, b = nics
    a.open_connection(1, 0, "b")
    b.open_connection(1, 0, "a")
    drained = []

    def drainer():
        while True:
            pkt = yield b.rx_ring(0).get()
            drained.append(pkt)

    sim.spawn(drainer())

    def sender():
        for _ in range(NPKT):
            yield from a.send_from_host(
                0, RpcPacket(RpcKind.REQUEST, 1, "m", b"", 48))

    sim.spawn(sender())
    return sim, injector, a, b, drained


def assert_exactly_once(a, drained):
    lost = a.transport.stats.lost_unrecoverable
    seqs = sorted(p.seq for p in drained)
    assert len(seqs) == len(set(seqs)), "a seq reached the host twice"
    assert len(drained) + lost == NPKT, "delivered + lost != sent"
    assert lost == 0, "these schedules stay far from the give-up horizon"
    assert seqs == list(range(NPKT))


def test_exactly_once_under_wire_loss():
    sim, injector, a, b, drained = faulty_pair(WireFaults(loss=0.05))
    sim.run()  # no crash, no permanent stall
    assert injector.stats.wire_losses > 0
    assert a.transport.stats.retransmissions > 0
    assert_exactly_once(a, drained)


def test_exactly_once_under_correlated_bursts():
    sim, injector, a, b, drained = faulty_pair(
        WireFaults(burst_enter=0.03, burst_exit=0.3))
    sim.run()
    assert injector.stats.wire_burst_losses > 0
    assert_exactly_once(a, drained)


def test_exactly_once_under_duplication():
    sim, injector, a, b, drained = faulty_pair(WireFaults(duplicate=0.2))
    sim.run()
    assert injector.stats.wire_duplicates > 0
    # The NIC suppressed every wire duplicate before the host ring.
    assert b.transport.stats.duplicates_dropped > 0
    assert_exactly_once(a, drained)


def test_exactly_once_under_reordering():
    sim, injector, a, b, drained = faulty_pair(
        WireFaults(reorder=0.3, reorder_delay_ns=5_000))
    sim.run()
    assert injector.stats.wire_reorders > 0
    assert_exactly_once(a, drained)


def test_exactly_once_under_combined_faults():
    sim, injector, a, b, drained = faulty_pair(
        WireFaults(loss=0.03, duplicate=0.1, reorder=0.1,
                   reorder_delay_ns=4_000), seed=17)
    sim.run()
    assert_exactly_once(a, drained)


def test_straggler_windows_restore_core_speed():
    sim = Simulator()
    config = ChaosConfig.from_dict(
        {"seed": 2, "straggler": {"core_id": 3, "slowdown": 5.0,
                                  "period_ns": 1_000, "duration_ns": 500,
                                  "windows": 4}})
    injector = ChaosInjector(sim, config)
    switch = ToRSwitch(sim, CAL, loopback=True)
    core = SimpleNamespace(core_id=3, slowdown=1.0)
    other = SimpleNamespace(core_id=0, slowdown=1.0)
    injector.attach(switch, cores=[other, core])
    sim.run()
    assert injector.stats.straggler_windows == 4
    assert core.slowdown == 1.0  # restored after every window
    assert other.slowdown == 1.0  # never touched


def test_cache_thrash_flushes_connection_caches():
    sim = Simulator()
    config = ChaosConfig.from_dict(
        {"seed": 2, "cache_thrash": {"period_ns": 1_000, "flushes": 3}})
    injector = ChaosInjector(sim, config)
    switch = ToRSwitch(sim, CAL, loopback=True)
    cache = SimpleNamespace(flush=lambda: 2)
    nic = SimpleNamespace(connection_manager=SimpleNamespace(cache=cache))
    injector.attach(switch, nics=[nic])
    sim.run()
    assert injector.stats.cache_flushes == 3
    assert injector.stats.cache_entries_flushed == 6


# -- the measurement rig -----------------------------------------------------


def canonical(result):
    return json.dumps(result, sort_keys=True, separators=(",", ":"))


def test_run_chaos_point_is_bit_identical_for_a_seed():
    first = run_chaos_point(fault_class="loss", nreq=300, seed=21)
    second = run_chaos_point(fault_class="loss", nreq=300, seed=21)
    assert canonical(first) == canonical(second)
    assert canonical(first) != canonical(
        run_chaos_point(fault_class="loss", nreq=300, seed=22))


def test_run_chaos_point_recovers_under_loss():
    result = run_chaos_point(fault_class="loss", nreq=300, seed=21)
    assert result["completed"] + result["lost_rpcs"] == 300
    assert result["duplicate_host_deliveries"] == 0
    assert result["chaos"]["wire_losses"] > 0
    assert result["lost_rpcs"] <= 3  # bounded: at most 1%


def test_run_chaos_point_validates_inputs():
    with pytest.raises(ValueError, match="unknown fault class"):
        run_chaos_point(fault_class="gremlins")
    with pytest.raises(ValueError, match="nreq"):
        run_chaos_point(nreq=0)
    with pytest.raises(ValueError, match="load"):
        run_chaos_point(load_mrps=0)
