"""Unit tests for the chaos fault model: configs, injector, switch hook."""

import pytest

from repro.chaos import (
    CacheThrashFault,
    ChaosConfig,
    ChaosInjector,
    StragglerFault,
    WireFaults,
)
from repro.hw.calibration import DEFAULT_CALIBRATION
from repro.hw.switch import ToRSwitch
from repro.rpc.messages import RpcKind, RpcPacket
from repro.sim import Simulator


def request(src="a", dst="b"):
    return RpcPacket(RpcKind.REQUEST, 1, "m", b"", 48, src_address=src,
                     dst_address=dst)


def control(src="a", dst="b"):
    return RpcPacket(RpcKind.CONTROL, 1, "__ack__", 0, 16, src_address=src,
                     dst_address=dst)


# -- config validation + round-trip -----------------------------------------


def test_wire_fault_rates_validated():
    with pytest.raises(ValueError, match="loss"):
        WireFaults(loss=1.5)
    with pytest.raises(ValueError, match="burst_enter"):
        WireFaults(burst_enter=-0.1)
    with pytest.raises(ValueError, match="reorder_delay_ns"):
        WireFaults(reorder=0.1, reorder_delay_ns=-1)


def test_straggler_and_thrash_validated():
    with pytest.raises(ValueError, match="slowdown"):
        StragglerFault(slowdown=0.5)
    with pytest.raises(ValueError, match="period_ns"):
        StragglerFault(windows=1, period_ns=0)
    with pytest.raises(ValueError, match="flushes"):
        CacheThrashFault(flushes=-1)
    with pytest.raises(ValueError, match="degraded_nics"):
        ChaosConfig(degraded_nics={"a": -5})


def test_wire_active_flag():
    assert not WireFaults().active
    assert WireFaults(loss=0.01).active
    assert WireFaults(burst_enter=0.01).active


def test_config_dict_round_trip():
    config = ChaosConfig(
        seed=7,
        wire=WireFaults(loss=0.02, reorder=0.05, duplicate=0.01),
        degraded_nics={"server": 2_000, "client": 500},
        straggler=StragglerFault(core_id=3, windows=2),
        cache_thrash=CacheThrashFault(flushes=4),
    )
    data = config.to_dict()
    assert ChaosConfig.from_dict(data) == config
    # Canonical: degraded_nics serialized in sorted key order.
    assert list(data["degraded_nics"]) == ["client", "server"]


def test_from_dict_of_partial_override():
    config = ChaosConfig.from_dict({"seed": 3, "wire": {"loss": 0.1}})
    assert config.seed == 3
    assert config.wire.loss == 0.1
    assert config.straggler.windows == 0


# -- injector verdicts -------------------------------------------------------


def make_injector(**wire):
    sim = Simulator()
    config = ChaosConfig(seed=5, wire=WireFaults(**wire))
    return sim, ChaosInjector(sim, config)


def test_loss_drops_some_but_not_all():
    _, injector = make_injector(loss=0.3)
    verdicts = [injector.on_wire("b", request()) for _ in range(200)]
    dropped = sum(1 for v in verdicts if not v)
    assert dropped == injector.stats.wire_losses
    assert 20 < dropped < 120  # ~60 expected; crude but seed-stable bounds


def test_duplicate_delivers_a_clone_not_the_same_object():
    _, injector = make_injector(duplicate=1.0)
    packet = request()
    deliveries = injector.on_wire("b", packet)
    assert len(deliveries) == 2
    assert deliveries[0][0] is packet
    assert deliveries[1][0] is not packet
    assert deliveries[1][0].rpc_id == packet.rpc_id
    assert deliveries[1][0].seq == packet.seq


def test_reorder_adds_the_configured_delay():
    _, injector = make_injector(reorder=1.0, reorder_delay_ns=7_000)
    deliveries = injector.on_wire("b", request())
    assert [delay for _, delay in deliveries] == [7_000]


def test_burst_loss_is_correlated():
    _, injector = make_injector(burst_enter=0.2, burst_exit=0.2)
    outcomes = [bool(injector.on_wire("b", request())) for _ in range(400)]
    assert injector.stats.wire_burst_losses > 0
    # Correlation: at least one run of >= 3 consecutive losses, which
    # i.i.d. loss at this average rate would make vanishingly rare.
    losses = "".join("L" if not ok else "." for ok in outcomes)
    assert "LLL" in losses


def test_spare_control_exempts_control_packets():
    _, injector = make_injector(loss=1.0, spare_control=True)
    # Control passes untouched; data is annihilated.
    packet = control()
    assert injector.on_wire("b", packet) == [(packet, 0)]
    assert injector.on_wire("b", request()) == []


def test_control_faults_are_counted_separately():
    _, injector = make_injector(loss=1.0)
    injector.on_wire("b", control())
    injector.on_wire("b", request())
    assert injector.stats.wire_losses == 2
    assert injector.stats.control_faults == 1


def test_degraded_nic_adds_delay_by_source():
    sim = Simulator()
    config = ChaosConfig(seed=5, degraded_nics={"a": 1_500})
    injector = ChaosInjector(sim, config)
    deliveries = injector.on_wire("b", request(src="a"))
    assert deliveries[0][1] == 1_500
    deliveries = injector.on_wire("a", request(src="b"))
    assert deliveries[0][1] == 0
    assert injector.stats.degraded_crossings >= 1


def test_same_seed_same_verdicts():
    def verdict_trace(seed):
        sim = Simulator()
        config = ChaosConfig(seed=seed, wire=WireFaults(
            loss=0.1, reorder=0.1, duplicate=0.1))
        injector = ChaosInjector(sim, config)
        return [(len(injector.on_wire("b", request())))
                for _ in range(300)]

    assert verdict_trace(9) == verdict_trace(9)
    assert verdict_trace(9) != verdict_trace(10)


# -- switch integration ------------------------------------------------------


def test_switch_counts_chaos_drops_and_stays_clean_without_faults():
    sim = Simulator()
    switch = ToRSwitch(sim, DEFAULT_CALIBRATION, loopback=True)
    assert switch.wire_faults is None  # default path: no chaos, no cost
    config = ChaosConfig(seed=5, wire=WireFaults(loss=1.0))
    injector = ChaosInjector(sim, config)
    injector.attach(switch)
    assert switch.wire_faults is injector

    received = []
    switch.register("b", received.append)
    for _ in range(5):
        switch.send("b", request())
    sim.run()
    assert received == []
    assert switch.packets_dropped == 5


def test_fault_event_log_is_bounded():
    from repro.chaos.injector import MAX_FAULT_EVENTS

    _, injector = make_injector(loss=1.0)
    for _ in range(MAX_FAULT_EVENTS + 50):
        injector.on_wire("b", request())
    assert len(injector.events) == MAX_FAULT_EVENTS
