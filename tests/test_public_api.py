"""Public-API surface checks: exports exist and are importable."""

import repro
import repro.sim as sim_pkg
import repro.stacks as stacks_pkg
from repro.apps.kvs import __all__ as kvs_all
from repro.rpc import __all__ as rpc_all
from repro.rpc.idl import __all__ as idl_all


def test_version():
    assert repro.__version__ == "1.0.0"


def test_top_level_exports():
    assert repro.Simulator
    assert repro.Machine
    assert repro.MachineConfig


def test_sim_exports_resolve():
    for name in sim_pkg.__all__:
        assert getattr(sim_pkg, name) is not None, name


def test_stacks_exports_resolve():
    for name in stacks_pkg.__all__:
        assert getattr(stacks_pkg, name) is not None, name


def test_rpc_exports_resolve():
    import repro.rpc as rpc_pkg

    for name in rpc_all:
        assert getattr(rpc_pkg, name) is not None, name


def test_idl_exports_resolve():
    import repro.rpc.idl as idl_pkg

    for name in idl_all:
        assert getattr(idl_pkg, name) is not None, name


def test_kvs_exports_resolve():
    import repro.apps.kvs as kvs_pkg

    for name in kvs_all:
        assert getattr(kvs_pkg, name) is not None, name


def test_hw_exports_resolve():
    import repro.hw as hw_pkg
    import repro.hw.nic as nic_pkg
    import repro.hw.interconnect as ic_pkg

    for pkg in (hw_pkg, nic_pkg, ic_pkg):
        for name in pkg.__all__:
            assert getattr(pkg, name) is not None, (pkg.__name__, name)


def test_public_classes_have_docstrings():
    from repro.hw.nic import DaggerNic
    from repro.rpc import RpcClient, RpcThreadedServer
    from repro.sim import Simulator
    from repro.stacks import DaggerStack

    for cls in (DaggerNic, RpcClient, RpcThreadedServer, Simulator,
                DaggerStack):
        assert cls.__doc__ and len(cls.__doc__.strip()) > 20, cls
