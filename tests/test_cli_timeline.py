"""End-to-end tests of ``python -m repro timeline`` and ``trace --replay``."""

import json

from repro.__main__ import main


def test_timeline_prints_utilization_and_writes_chrome_trace(capsys, tmp_path):
    out_json = str(tmp_path / "echo_trace.json")
    rc = main(["timeline", "--batch", "4", "--nreq", "2000",
               "--chrome-trace", out_json])
    assert rc == 0
    out = capsys.readouterr().out
    assert "telemetry samples" in out
    assert "Utilization (exact busy fractions)" in out
    assert "nic.client" in out
    assert "ui.perfetto.dev" in out
    document = json.loads(open(out_json).read())
    assert set(document) == {"traceEvents", "displayTimeUnit"}
    assert {e["ph"] for e in document["traceEvents"]} == {"M", "X", "C",
                                                      "s", "t", "f"}


def test_timeline_open_loop_without_trace(capsys):
    rc = main(["timeline", "--batch", "1", "--nreq", "1500",
               "--open-loop-mrps", "1.0", "--interval-ns", "5000"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "Utilization (exact busy fractions)" in out


def test_timeline_chrome_trace_unwritable_path_fails_cleanly(capsys, tmp_path):
    rc = main(["timeline", "--batch", "4", "--nreq", "1500",
               "--chrome-trace", str(tmp_path / "no-such-dir" / "t.json")])
    assert rc == 2
    assert "cannot write" in capsys.readouterr().err


def test_timeline_tenants_mode_prints_per_tenant_tables(capsys, tmp_path):
    out_json = str(tmp_path / "tenants.json")
    rc = main(["timeline", "--tenants", "3", "--noisy-mrps", "6.0",
               "--nreq", "1500", "--chrome-trace", out_json])
    assert rc == 0
    out = capsys.readouterr().out
    assert "t0 is the noisy neighbour" in out
    assert "Per-tenant utilization" in out
    assert "nic.t0.fetch" in out and "nic.t2.fetch" in out
    assert "shared" in out
    document = json.loads(open(out_json).read())
    processes = {e["args"]["name"] for e in document["traceEvents"]
                 if e["ph"] == "M" and e["name"] == "process_name"}
    assert {"tenant t0", "tenant t1", "tenant t2"} <= processes


def test_timeline_tenants_rejects_bad_count(capsys):
    rc = main(["timeline", "--tenants", "1"])
    assert rc == 2
    assert "at least 2" in capsys.readouterr().err


def test_trace_replay_round_trip(capsys, tmp_path):
    jsonl = str(tmp_path / "dump.jsonl")
    rc = main(["trace", "--nreq", "300", "--window", "4", "--jsonl", jsonl])
    assert rc == 0
    capsys.readouterr()
    rc = main(["trace", "--replay", jsonl])
    assert rc == 0
    out = capsys.readouterr().out
    assert "replay of" in out
    assert "300 spans" in out
    assert "host->NIC fetch (req)" in out


def test_trace_replay_missing_file_exits_nonzero(capsys, tmp_path):
    rc = main(["trace", "--replay", str(tmp_path / "missing.jsonl")])
    assert rc == 2
    err = capsys.readouterr().err
    assert "error:" in err
    assert "cannot read" in err


def test_trace_replay_corrupt_file_exits_nonzero(capsys, tmp_path):
    path = tmp_path / "corrupt.jsonl"
    path.write_text('{"type": "span"\n')
    rc = main(["trace", "--replay", str(path)])
    assert rc == 2
    err = capsys.readouterr().err
    assert "not valid JSON" in err
    assert "corrupt.jsonl:1" in err


def test_trace_replay_empty_dump_exits_nonzero(capsys, tmp_path):
    path = tmp_path / "empty.jsonl"
    path.write_text('{"type": "metrics", "snapshot": {}}\n')
    rc = main(["trace", "--replay", str(path)])
    assert rc == 2
    assert "no spans" in capsys.readouterr().err
