"""Tests for the Shared Receive Queue model (§4.2).

Multiple connections — even to different servers — share one RpcClient's
ring pair; responses demultiplex by rpc id.
"""

import pytest

from repro.hw.nic.config import NicHardConfig
from repro.hw.platform import Machine
from repro.hw.switch import ToRSwitch
from repro.rpc import RpcClient, RpcError, RpcThreadedServer
from repro.sim import Simulator
from repro.stacks import DaggerStack, connect


def handler_factory(tag):
    def handler(ctx, payload):
        return tag, 48
        yield  # pragma: no cover

    return handler


def build_srq_rig():
    sim = Simulator()
    machine = Machine(sim)
    switch = ToRSwitch(sim, machine.calibration, loopback=True)
    client_stack = DaggerStack(machine, switch, "client",
                               hard=NicHardConfig(num_flows=1))
    servers = {}
    for index, name in enumerate(("alpha", "beta")):
        stack = DaggerStack(machine, switch, name,
                            hard=NicHardConfig(num_flows=1))
        server = RpcThreadedServer(sim, machine.calibration, name=name)
        server.register_handler("who", handler_factory(name.encode()))
        server.add_server_thread(stack.port(0), machine.thread(4 + index))
        server.start()
        servers[name] = stack
    conn_alpha = connect(client_stack, 0, servers["alpha"], 0)
    conn_beta = connect(client_stack, 0, servers["beta"], 0)
    client = RpcClient(client_stack.port(0), machine.thread(0), conn_alpha)
    client.add_connection(conn_beta)
    return sim, client, conn_alpha, conn_beta


def test_two_connections_share_one_ring():
    sim, client, conn_alpha, conn_beta = build_srq_rig()

    def main():
        a = yield from client.call("who", b"", 48)
        b = yield from client.call("who", b"", 48,
                                   connection_id=conn_beta)
        return a.payload, b.payload

    assert sim.run_until_done(sim.spawn(main())) == (b"alpha", b"beta")


def test_interleaved_async_calls_demux_correctly():
    sim, client, conn_alpha, conn_beta = build_srq_rig()

    def main():
        calls = []
        for i in range(20):
            conn = conn_alpha if i % 2 == 0 else conn_beta
            call = yield from client.call_async("who", b"", 48,
                                                connection_id=conn)
            calls.append((conn, call))
        results = []
        for conn, call in calls:
            response = yield call.event
            results.append((conn, response.payload))
        return results

    results = sim.run_until_done(sim.spawn(main()))
    for conn, payload in results:
        expected = b"alpha" if conn == conn_alpha else b"beta"
        assert payload == expected


def test_unregistered_connection_rejected():
    sim, client, *_ = build_srq_rig()

    def main():
        yield from client.call("who", b"", 48, connection_id=9999)

    with pytest.raises(RpcError, match="not registered"):
        sim.run_until_done(sim.spawn(main()))
