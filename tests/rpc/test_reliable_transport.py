"""Tests for the hardware reliable transport (§4.5 extension).

With the Protocol unit enabled, packets the receiving NIC must drop (full
flow FIFOs or host RX rings) are NACKed and retransmitted from the sender
NIC's buffer — no host CPU involved, and the host never observes a loss.
"""

import pytest

from repro.hw.calibration import DEFAULT_CALIBRATION
from repro.hw.interconnect.ccip import make_interface
from repro.hw.nic.config import NicHardConfig, NicSoftConfig
from repro.hw.nic.dagger_nic import DaggerNic
from repro.hw.platform import Machine
from repro.hw.switch import ToRSwitch
from repro.rpc.messages import RpcKind, RpcPacket
from repro.rpc.transport import ReliableTransport, TransportStats
from repro.sim import Simulator

CAL = DEFAULT_CALIBRATION


def build_pair(rx_entries=128, reliable=True, drain=False):
    sim = Simulator()
    machine = Machine(sim)
    switch = ToRSwitch(sim, CAL, loopback=True)
    hard = NicHardConfig(num_flows=1, rx_ring_entries=rx_entries,
                         reliable_transport=reliable)
    nics = []
    for name in ("a", "b"):
        interface = make_interface("upi", sim, CAL, machine.fpga)
        nics.append(DaggerNic(sim, CAL, interface, switch, name, hard=hard,
                              soft=NicSoftConfig()))
    a, b = nics
    a.open_connection(1, 0, "b")
    b.open_connection(1, 0, "a")
    if drain:
        drained = []

        def drainer():
            while True:
                pkt = yield b.rx_ring(0).get()
                drained.append(pkt)
                yield sim.timeout(400)  # slow consumer

        sim.spawn(drainer())
        return sim, a, b, drained
    return sim, a, b, None


def send_all(sim, nic, packets):
    def sender():
        for packet in packets:
            yield from nic.send_from_host(0, packet)

    sim.spawn(sender())


def test_no_losses_without_pressure():
    sim, a, b, _ = build_pair()
    packets = [RpcPacket(RpcKind.REQUEST, 1, "m", b"", 48)
               for _ in range(10)]
    send_all(sim, a, packets)
    sim.run()
    assert b.monitor.delivered_rpcs == 10
    assert a.transport.stats.retransmissions == 0
    assert all(p.seq == i for i, p in enumerate(packets))


def test_dropped_packets_are_retransmitted_and_delivered():
    sim, a, b, drained = build_pair(rx_entries=4, drain=True)
    packets = [RpcPacket(RpcKind.REQUEST, 1, "m", b"", 48)
               for _ in range(40)]
    send_all(sim, a, packets)
    sim.run()
    # Drops happened, yet every packet eventually reached the host exactly
    # once.
    assert b.monitor.dropped_rx_ring > 0
    assert a.transport.stats.retransmissions > 0
    assert len(drained) == 40
    assert sorted(p.seq for p in drained) == list(range(40))
    assert len({p.rpc_id for p in drained}) == 40


def test_without_reliability_drops_are_final():
    sim, a, b, drained = build_pair(rx_entries=4, reliable=False,
                                    drain=True)
    packets = [RpcPacket(RpcKind.REQUEST, 1, "m", b"", 48)
               for _ in range(40)]
    send_all(sim, a, packets)
    sim.run()
    assert b.monitor.dropped_rx_ring > 0
    assert len(drained) == 40 - b.monitor.dropped_rx_ring
    assert a.transport is None


def test_control_packets_never_reach_host():
    sim, a, b, drained = build_pair(rx_entries=4, drain=True)
    packets = [RpcPacket(RpcKind.REQUEST, 1, "m", b"", 48)
               for _ in range(64)]
    send_all(sim, a, packets)
    sim.run()
    assert b.transport.stats.nacks_sent + b.transport.stats.acks_sent > 0
    assert all(p.kind is RpcKind.REQUEST for p in drained)


def test_acks_free_retransmit_buffer():
    sim, a, b, drained = build_pair(drain=True)
    packets = [RpcPacket(RpcKind.REQUEST, 1, "m", b"", 48)
               for _ in range(3 * a.transport.ack_interval)]
    send_all(sim, a, packets)
    sim.run()
    assert b.transport.stats.acks_sent >= 2
    # Cumulative ACKs freed (almost) everything.
    assert a.transport.unacked < a.transport.ack_interval


def test_transport_unit_api_validation():
    sim, a, _, _ = build_pair()
    with pytest.raises(ValueError):
        ReliableTransport(a, ack_interval=0)
    bogus = RpcPacket(RpcKind.CONTROL, 1, "__mystery__", 0, 16)
    with pytest.raises(ValueError, match="unknown control"):
        a.transport.on_control(bogus)


def test_stats_shape():
    stats = TransportStats()
    assert stats.data_packets == 0
    assert stats.retransmissions == 0


def test_retries_bounded_without_drainer():
    # Nobody drains b's RX ring: retransmits must give up, not livelock.
    sim, a, b, _ = build_pair(rx_entries=2, drain=False)
    packets = [RpcPacket(RpcKind.REQUEST, 1, "m", b"", 48)
               for _ in range(10)]
    send_all(sim, a, packets)
    sim.run()  # terminates because retries are capped
    assert a.transport.stats.lost_unrecoverable >= 1
    assert len(b.rx_ring(0)) == 2
