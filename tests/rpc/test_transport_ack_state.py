"""Regression tests for the reliable transport's ACK-side state cleanup.

Before the fix, ``_handle_ack`` freed ``_unacked`` entries but never the
matching ``_retries`` entries (unbounded growth over a long run) and
linearly scanned every unacked key of every connection per ACK.
"""

from types import SimpleNamespace

from repro.rpc.messages import RpcKind, RpcPacket
from repro.rpc.transport import ReliableTransport


class FakeNic:
    """Just enough NIC for the transport unit: address + egress capture."""

    def __init__(self):
        self.address = "a"
        self.hard = SimpleNamespace(num_flows=1)
        self.sent = []

    def enqueue_egress(self, flow_id, packet):
        self.sent.append((flow_id, packet))


def data_packet(conn=1):
    return RpcPacket(RpcKind.REQUEST, conn, "m", b"", 48, src_address="a",
                     dst_address="b")


def build(max_retries=2):
    return ReliableTransport(FakeNic(), ack_interval=4,
                             max_retries=max_retries)


def egress_n(transport, n, conn=1):
    packets = [data_packet(conn) for _ in range(n)]
    for packet in packets:
        transport.on_egress(packet)
    return packets


def test_cumulative_ack_frees_prefix_and_retry_state():
    transport = build()
    egress_n(transport, 10)
    # NACKs create retry state for seqs 2 and 3.
    transport._handle_nack(1, 2)
    transport._handle_nack(1, 3)
    assert transport.stats.retransmissions == 2
    assert len(transport._retries) == 2
    transport._handle_ack(1, 5)
    assert transport.unacked == 4  # seqs 6..9 still buffered
    assert transport._retries == {}  # the leak: now cleaned on ACK


def test_full_ack_leaves_no_residual_state():
    transport = build()
    egress_n(transport, 8)
    transport._handle_nack(1, 7)
    transport._handle_ack(1, 7)
    assert transport.unacked == 0
    assert transport._unacked == {}
    assert transport._retries == {}


def test_ack_only_touches_its_connection():
    transport = build()
    egress_n(transport, 4, conn=1)
    egress_n(transport, 4, conn=2)
    transport._handle_nack(2, 1)
    transport._handle_ack(1, 3)
    assert transport.unacked == 4  # all of conn 2 still buffered
    assert list(transport._retries) == [(2, 1)]
    transport._handle_ack(2, 3)
    assert transport.unacked == 0
    assert transport._retries == {}


def test_give_up_path_cleans_retry_state():
    transport = build(max_retries=2)
    egress_n(transport, 2)
    transport._handle_nack(1, 0)
    transport._handle_nack(1, 0)
    transport._handle_nack(1, 0)  # exceeds max_retries: dropped for good
    assert transport.stats.lost_unrecoverable == 1
    assert transport.unacked == 1
    assert (1, 0) not in transport._retries


def test_ack_for_unknown_connection_is_a_noop():
    transport = build()
    transport._handle_ack(99, 5)
    assert transport.unacked == 0


def test_retransmitted_packets_keep_buffer_order_for_prefix_frees():
    transport = build(max_retries=8)
    egress_n(transport, 6)
    # Retransmit seq 2: on_egress runs again for it (as the egress pipeline
    # does), which must not move it behind newer seqs.
    transport._handle_nack(1, 2)
    _, retransmitted = transport.nic.sent[-1]
    transport.on_egress(retransmitted)
    assert list(transport._unacked[1]) == [0, 1, 2, 3, 4, 5]
    transport._handle_ack(1, 2)
    assert sorted(transport._unacked[1]) == [3, 4, 5]


def test_end_to_end_run_leaves_no_orphan_retry_entries():
    """After a lossy run, every retry entry must refer to a live buffer
    entry — nothing accumulates for already-ACKed packets."""
    from repro.hw.calibration import DEFAULT_CALIBRATION
    from repro.hw.interconnect.ccip import make_interface
    from repro.hw.nic.config import NicHardConfig, NicSoftConfig
    from repro.hw.nic.dagger_nic import DaggerNic
    from repro.hw.platform import Machine
    from repro.hw.switch import ToRSwitch
    from repro.sim import Simulator

    sim = Simulator()
    machine = Machine(sim)
    switch = ToRSwitch(sim, DEFAULT_CALIBRATION, loopback=True)
    hard = NicHardConfig(num_flows=1, rx_ring_entries=4,
                         reliable_transport=True)
    nics = []
    for name in ("a", "b"):
        interface = make_interface("upi", sim, DEFAULT_CALIBRATION,
                                   machine.fpga)
        nics.append(DaggerNic(sim, DEFAULT_CALIBRATION, interface, switch,
                              name, hard=hard, soft=NicSoftConfig()))
    a, b = nics
    a.open_connection(1, 0, "b")
    b.open_connection(1, 0, "a")

    def drainer():
        while True:
            yield b.rx_ring(0).get()
            yield sim.timeout(400)  # slow consumer forces drops + NACKs

    sim.spawn(drainer())

    def sender():
        for _ in range(120):
            yield from a.send_from_host(
                0, RpcPacket(RpcKind.REQUEST, 1, "m", b"", 48))

    sim.spawn(sender())
    sim.run()
    assert a.transport.stats.retransmissions > 0
    assert b.transport.stats.acks_sent > 0
    for conn, seq in a.transport._retries:
        assert seq in a.transport._unacked.get(conn, {})
