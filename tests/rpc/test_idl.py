"""Unit tests for the IDL lexer, parser, and code generator."""

import pytest

from repro.rpc.errors import SerializationError
from repro.rpc.idl import IdlSyntaxError, generate_python, load_idl, parse_idl, tokenize

LISTING_1 = """
Message GetRequest {
    int32 timestamp;
    char[32] key;
}
Message GetResponse {
    int32 timestamp;
    char[32] value;
}
Message SetRequest {
    int32 timestamp;
    char[32] key;
    char[32] value;
}
Message SetResponse {
    int32 timestamp;
}
Service KeyValueStore {
    rpc get(GetRequest) returns(GetResponse);
    rpc set(SetRequest) returns(SetResponse);
}
"""


# ------------------------------------------------------------------- lexer


def test_tokenize_kinds():
    tokens = tokenize("Message M { int32 x; }")
    kinds = [t.kind for t in tokens]
    assert kinds == ["keyword", "ident", "punct", "ident", "ident",
                     "punct", "punct", "eof"]


def test_tokenize_comments():
    tokens = tokenize("# comment\n// another\nMessage M {}")
    assert tokens[0].value == "Message"
    assert tokens[0].line == 3


def test_tokenize_tracks_lines():
    tokens = tokenize("Message\nM\n{\n}")
    assert [t.line for t in tokens[:4]] == [1, 2, 3, 4]


def test_tokenize_bad_character():
    with pytest.raises(IdlSyntaxError, match="line 1"):
        tokenize("Message M { int32 $x; }")


# ------------------------------------------------------------------ parser


def test_parse_listing_1():
    idl = parse_idl(LISTING_1)
    assert [m.name for m in idl.messages] == [
        "GetRequest", "GetResponse", "SetRequest", "SetResponse"]
    assert idl.message("GetRequest").byte_size == 36
    service = idl.services[0]
    assert service.name == "KeyValueStore"
    assert [(r.name, r.request_type, r.response_type) for r in service.rpcs] \
        == [("get", "GetRequest", "GetResponse"),
            ("set", "SetRequest", "SetResponse")]


def test_parse_empty_message():
    idl = parse_idl("Message Empty {}")
    assert idl.message("Empty").byte_size == 0


def test_parse_unknown_type():
    with pytest.raises(IdlSyntaxError, match="unknown type"):
        parse_idl("Message M { string s; }")


def test_parse_missing_semicolon():
    with pytest.raises(IdlSyntaxError):
        parse_idl("Message M { int32 x }")


def test_parse_undefined_rpc_type():
    with pytest.raises(ValueError, match="undefined Message"):
        parse_idl("Service S { rpc f(Nope) returns(Nope); }")


def test_parse_duplicate_message_names():
    with pytest.raises(ValueError, match="duplicate"):
        parse_idl("Message M { int32 x; } Message M { int32 y; }")


def test_parse_duplicate_field_names():
    with pytest.raises(IdlSyntaxError):
        parse_idl("Message M { int32 x; int32 x; }")


def test_parse_top_level_garbage():
    with pytest.raises(IdlSyntaxError, match="expected 'Message'"):
        parse_idl("Banana B {}")


# ----------------------------------------------------------------- codegen


def test_generated_module_exports():
    namespace = load_idl(LISTING_1)
    for name in ("GetRequest", "GetResponse", "SetRequest", "SetResponse",
                 "KeyValueStoreClient", "KeyValueStoreServicer"):
        assert name in namespace
    assert set(namespace["__all__"]) >= {"GetRequest", "KeyValueStoreClient"}


def test_generated_message_roundtrip():
    namespace = load_idl(LISTING_1)
    GetRequest = namespace["GetRequest"]
    request = GetRequest(timestamp=9, key=b"abc")
    data = request.pack()
    assert len(data) == GetRequest.BYTE_SIZE == 36
    again = GetRequest.unpack(data)
    assert again == request
    assert again.timestamp == 9
    assert again.key.rstrip(b"\x00") == b"abc"


def test_generated_message_defaults():
    namespace = load_idl(LISTING_1)
    request = namespace["GetRequest"]()
    assert request.timestamp == 0
    assert request.key == b""
    assert len(request.pack()) == 36


def test_generated_message_repr_and_eq():
    namespace = load_idl(LISTING_1)
    GetRequest = namespace["GetRequest"]
    a = GetRequest(timestamp=1, key=b"k")
    assert "timestamp=1" in repr(a)
    assert a != GetRequest(timestamp=2, key=b"k")
    assert a.__eq__(42) is NotImplemented


def test_generated_unpack_length_check():
    namespace = load_idl(LISTING_1)
    with pytest.raises(SerializationError):
        namespace["GetRequest"].unpack(b"short")


def test_generated_pack_oversize_char():
    namespace = load_idl(LISTING_1)
    request = namespace["GetRequest"](timestamp=1, key=b"x" * 33)
    with pytest.raises(SerializationError):
        request.pack()


def test_servicer_unimplemented_raises():
    namespace = load_idl(LISTING_1)
    servicer = namespace["KeyValueStoreServicer"]()
    with pytest.raises(NotImplementedError):
        servicer.get(None, None)


def test_generated_source_is_valid_python():
    source = generate_python(LISTING_1)
    compile(source, "<test>", "exec")
    assert "class GetRequest:" in source
    assert "class KeyValueStoreClient:" in source
    assert "Do not edit" in source
