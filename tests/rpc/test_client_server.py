"""Integration tests for the RPC client/server runtime over Dagger."""

import pytest

from repro.hw.nic.config import NicHardConfig, NicSoftConfig
from repro.hw.platform import Machine
from repro.hw.switch import ToRSwitch
from repro.rpc import (
    MethodNotFoundError,
    RpcClient,
    RpcClientPool,
    RpcDroppedError,
    RpcThreadedServer,
    ThreadingModel,
)
from repro.sim import Simulator
from repro.stacks import DaggerStack, connect


def echo(ctx, payload):
    return payload, 48
    yield  # pragma: no cover


def make_rig(num_flows=1, server_threads=1, model=ThreadingModel.DISPATCH,
             workers=0, handler=echo, active_flows=None):
    sim = Simulator()
    machine = Machine(sim)
    switch = ToRSwitch(sim, machine.calibration, loopback=True)
    hard = NicHardConfig(num_flows=num_flows)
    soft = NicSoftConfig(active_flows=active_flows or 0)
    client_stack = DaggerStack(machine, switch, "client", hard=hard)
    server_stack = DaggerStack(machine, switch, "server", hard=hard,
                               soft=soft)
    server = RpcThreadedServer(sim, machine.calibration)
    server.register_handler("echo", handler)
    worker_threads = machine.threads(workers, start_core=8) if workers else None
    for i in range(server_threads):
        server.add_server_thread(server_stack.port(i),
                                 machine.thread(4 + i), model=model,
                                 workers=worker_threads)
    server.start()
    conn = connect(client_stack, 0, server_stack, 0)
    client = RpcClient(client_stack.port(0), machine.thread(0), conn)
    return sim, machine, client, server, client_stack, server_stack


def test_blocking_call_roundtrip():
    sim, _, client, server, *_ = make_rig()

    def main():
        response = yield from client.call("echo", b"ping", 48)
        return response

    response = sim.run_until_done(sim.spawn(main()))
    assert response.payload == b"ping"
    assert server.requests_handled == 1
    assert client.calls_completed == 1


def test_async_calls_complete_out_of_band():
    sim, _, client, *_ = make_rig()
    seen = []

    def main():
        calls = []
        for i in range(5):
            call = yield from client.call_async(
                "echo", b"x", 48, callback=lambda c: seen.append(c.rpc_id)
            )
            calls.append(call)
        for call in calls:
            yield call.event

    sim.run_until_done(sim.spawn(main()))
    assert len(seen) == 5
    assert client.outstanding == 0


def test_call_latency_recorded():
    sim, _, client, *_ = make_rig()

    def main():
        call = yield from client.call_async("echo", b"x", 48)
        yield call.event
        return call

    call = sim.run_until_done(sim.spawn(main()))
    assert call.done
    assert call.latency_ns is not None
    assert 1000 < call.latency_ns < 10_000  # ~2 us round trip


def test_completion_queue_accumulates():
    sim, _, client, *_ = make_rig()

    def main():
        call = yield from client.call_async("echo", b"x", 48)
        yield call.event
        completed = yield client.completion_queue.pop()
        return completed

    completed = sim.run_until_done(sim.spawn(main()))
    assert completed.done
    assert client.completion_queue.completed_count == 1


def test_unknown_method_raises_in_server():
    sim, _, client, *_ = make_rig()

    def main():
        yield from client.call("nope", b"", 48)

    with pytest.raises(MethodNotFoundError):
        sim.spawn(main())
        sim.run()


def test_fail_pending():
    sim, _, client, *_ = make_rig()
    failures = []

    def main():
        call = yield from client.call_async("echo", b"", 48)
        client.fail_pending()
        try:
            yield call.event
        except RpcDroppedError:
            failures.append(call.rpc_id)

    sim.run_until_done(sim.spawn(main()))
    assert len(failures) == 1
    assert client.outstanding == 0


def test_worker_model_requires_workers():
    with pytest.raises(ValueError, match="worker"):
        make_rig(model=ThreadingModel.WORKER, workers=0)


def test_worker_model_roundtrip():
    sim, _, client, server, *_ = make_rig(
        model=ThreadingModel.WORKER, workers=2
    )

    def main():
        response = yield from client.call("echo", b"hi", 48)
        return response

    response = sim.run_until_done(sim.spawn(main()))
    assert response.payload == b"hi"
    assert server.server_threads[0].requests_handled == 1


def test_worker_model_has_higher_latency_than_dispatch():
    def run(model, workers):
        sim, _, client, *_ = make_rig(model=model, workers=workers)

        def main():
            call = yield from client.call_async("echo", b"", 48)
            yield call.event
            return call.latency_ns

        return sim.run_until_done(sim.spawn(main()))

    dispatch_ns = run(ThreadingModel.DISPATCH, 0)
    worker_ns = run(ThreadingModel.WORKER, 2)
    assert worker_ns > dispatch_ns + 2000  # handoff + wakeup cost


def test_handler_with_compute_and_defer():
    calls = []

    def slow(ctx, payload):
        yield from ctx.exec(10_000)
        ctx.defer(50_000)
        calls.append(ctx.sim.now)
        return payload, 48

    sim, _, client, *_ = make_rig(handler=slow)

    def main():
        first = yield from client.call("echo", b"", 48)
        t_first = sim.now
        yield from client.call("echo", b"", 48)
        return t_first, sim.now

    t_first, t_second = sim.run_until_done(sim.spawn(main()))
    # The second response waits behind the first's deferred work.
    assert t_second - t_first > 50_000


def test_duplicate_handler_registration_rejected():
    sim = Simulator()
    machine = Machine(sim)
    server = RpcThreadedServer(sim, machine.calibration)
    server.register_handler("m", echo)
    with pytest.raises(ValueError):
        server.register_handler("m", echo)


def test_client_pool_round_robin():
    sim, machine, client, _, client_stack, server_stack = make_rig(
        num_flows=3
    )
    conns = [connect(client_stack, i, server_stack, 0) for i in (1, 2)]
    others = [RpcClient(client_stack.port(i + 1), machine.thread(1), conn)
              for i, conn in enumerate(conns)]
    pool_clients = [client] + others
    pool = RpcClientPool(lambda i: pool_clients[i], size=3)
    picked = [pool.get_client() for _ in range(6)]
    assert picked == pool_clients * 2
    assert len(pool) == 3


def test_client_pool_size_validation():
    with pytest.raises(ValueError):
        RpcClientPool(lambda i: None, size=0)
