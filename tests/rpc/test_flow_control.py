"""Tests for credit-based flow control (§4.5 extension).

With credits capped at the receiver's ring capacity, ring overflow becomes
impossible: a slow consumer throttles the sender instead of causing drops.
"""

import pytest

from repro.hw.calibration import DEFAULT_CALIBRATION
from repro.hw.interconnect.ccip import make_interface
from repro.hw.nic.config import NicHardConfig, NicSoftConfig
from repro.hw.nic.dagger_nic import DaggerNic
from repro.hw.nic.resources import estimate_resources
from repro.hw.platform import Machine
from repro.hw.switch import ToRSwitch
from repro.rpc.congestion import CreditFlowControl
from repro.rpc.messages import RpcKind, RpcPacket
from repro.sim import Simulator

CAL = DEFAULT_CALIBRATION


def build_pair(rx_entries=8, credits=8, drain_delay_ns=500):
    sim = Simulator()
    machine = Machine(sim)
    switch = ToRSwitch(sim, CAL, loopback=True)
    hard = NicHardConfig(num_flows=1, rx_ring_entries=rx_entries,
                         flow_control=True, flow_control_credits=credits,
                         credit_batch=4)
    nics = []
    for name in ("a", "b"):
        interface = make_interface("upi", sim, CAL, machine.fpga)
        nics.append(DaggerNic(sim, CAL, interface, switch, name, hard=hard,
                              soft=NicSoftConfig()))
    a, b = nics
    a.open_connection(1, 0, "b")
    b.open_connection(1, 0, "a")
    drained = []

    def drainer():
        while True:
            pkt = yield b.rx_ring(0).get()
            drained.append(pkt)
            yield sim.timeout(drain_delay_ns)

    sim.spawn(drainer())
    return sim, a, b, drained


def send_all(sim, nic, count):
    packets = [RpcPacket(RpcKind.REQUEST, 1, "m", b"", 48)
               for _ in range(count)]

    def sender():
        for packet in packets:
            yield from nic.send_from_host(0, packet)

    sim.spawn(sender())
    return packets


def test_config_validation():
    with pytest.raises(ValueError, match="credit window"):
        NicHardConfig(flow_control=True, flow_control_credits=512,
                      rx_ring_entries=128)
    with pytest.raises(ValueError):
        NicHardConfig(credit_batch=0)


def test_engine_validation():
    sim, a, _, _ = build_pair()
    with pytest.raises(ValueError):
        CreditFlowControl(a, initial_credits=0, credit_batch=4)
    with pytest.raises(ValueError):
        CreditFlowControl(a, initial_credits=4, credit_batch=0)
    bogus = RpcPacket(RpcKind.CONTROL, 1, "__mystery__", 1, 16)
    with pytest.raises(ValueError, match="unknown control"):
        a.flow_control.on_control(bogus)


def test_no_drops_under_pressure():
    # 60 packets, 8-entry ring, slow consumer: without flow control this
    # overflows; with credits <= ring size it cannot.
    sim, a, b, drained = build_pair(rx_entries=8, credits=8)
    send_all(sim, a, 60)
    sim.run()
    assert b.monitor.drops == 0
    assert len(drained) == 60
    assert a.flow_control.stats.stalls > 0  # the sender actually throttled
    assert b.flow_control.stats.grants_sent > 0


def test_sender_tracks_consumer_rate():
    sim, a, b, drained = build_pair(rx_entries=8, credits=8,
                                    drain_delay_ns=2000)
    send_all(sim, a, 30)
    sim.run()
    assert len(drained) == 30
    # Delivery pace is set by the consumer (~2 us per packet), not the NIC.
    spacing = [drained[i + 1].timestamps["host_delivered"]
               - drained[i].timestamps["host_delivered"]
               for i in range(10, 25)]
    assert sum(spacing) / len(spacing) > 1500


def test_credits_do_not_gate_control_packets():
    sim, a, b, drained = build_pair()
    send_all(sim, a, 40)
    sim.run()
    # CREDIT grants flowed even while data was parked.
    assert b.flow_control.stats.credits_granted >= 32
    assert all(p.kind is RpcKind.REQUEST for p in drained)


def test_without_flow_control_same_pressure_drops():
    sim = Simulator()
    machine = Machine(sim)
    switch = ToRSwitch(sim, CAL, loopback=True)
    hard = NicHardConfig(num_flows=1, rx_ring_entries=8)
    a = DaggerNic(sim, CAL, make_interface("upi", sim, CAL, machine.fpga),
                  switch, "a", hard=hard)
    b = DaggerNic(sim, CAL, make_interface("upi", sim, CAL, machine.fpga),
                  switch, "b", hard=hard)
    a.open_connection(1, 0, "b")
    b.open_connection(1, 0, "a")
    drained = []

    def drainer():
        while True:
            pkt = yield b.rx_ring(0).get()
            drained.append(pkt)
            yield sim.timeout(500)

    sim.spawn(drainer())
    send_all(sim, a, 60)
    sim.run()
    assert b.monitor.drops > 0
    assert len(drained) < 60


def test_flow_control_costs_fpga_area():
    base = estimate_resources(NicHardConfig())
    with_fc = estimate_resources(NicHardConfig(flow_control=True))
    assert with_fc.luts > base.luts
    assert with_fc.m20k_blocks > base.m20k_blocks


def test_available_credits_api():
    sim, a, _, _ = build_pair(credits=8)
    assert a.flow_control.available_credits(99) == 8  # fresh connection
