"""Unit tests for the IDL pretty-printer."""

from repro.rpc.idl import parse_idl
from repro.rpc.idl.ast_nodes import format_idl

SOURCE = """
Message Pair {
    int32 a;
    char[16] b;
}
Service S {
    rpc swap(Pair) returns(Pair);
}
"""


def test_format_round_trips():
    idl = parse_idl(SOURCE)
    printed = format_idl(idl)
    reparsed = parse_idl(printed)
    assert reparsed.messages == idl.messages
    assert reparsed.services == idl.services


def test_format_layout():
    printed = format_idl(parse_idl(SOURCE))
    assert "Message Pair {" in printed
    assert "    char[16] b;" in printed
    assert "    rpc swap(Pair) returns(Pair);" in printed
    assert printed.endswith("}\n")


def test_format_empty_message():
    printed = format_idl(parse_idl("Message Empty {}"))
    assert printed == "Message Empty {\n}\n"
