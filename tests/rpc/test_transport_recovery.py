"""Regression + recovery tests for the transport bugs chaos flushed out.

Three fixed bugs, each pinned by a failing-before/passing-after test:

- ``on_delivered`` crashed with a ``KeyError`` when the *first* packet
  from a peer arrived out of order (no ``_delivered`` entry yet);
- duplicate arrivals (retransmit races, wire duplication) were delivered
  to the host ring again — now the NIC suppresses them pre-ring and the
  verdict comes back as ``on_delivered``'s return value;
- NACK retransmission re-enqueued the *same* ``RpcPacket`` object, so an
  in-flight alias and its retransmission corrupted each other's
  timestamps — retransmissions now send ``clone()``s.

Plus the new recovery machinery: sender RTO, SKIP hole-closing, stale
NACK accounting, cumulative credit-grant reconciliation, and the
credit-stall watchdog.
"""

from types import SimpleNamespace

from repro.rpc.congestion import CreditFlowControl
from repro.rpc.messages import RpcKind, RpcPacket
from repro.rpc.transport import (
    ACK_METHOD,
    SKIP_METHOD,
    ReliableTransport,
)
from repro.sim import Simulator


class FakeNic:
    """Just enough NIC for the transport unit: address + egress capture.

    No ``sim`` attribute — the transport's RTO and delayed-ACK timers
    must detect that and stay off, so these tests drive every transition
    by hand.
    """

    def __init__(self):
        self.address = "a"
        self.hard = SimpleNamespace(num_flows=1)
        self.sent = []

    def enqueue_egress(self, flow_id, packet):
        self.sent.append((flow_id, packet))


class SimNic(FakeNic):
    """FakeNic plus a kernel, for the timer-driven paths."""

    def __init__(self, sim):
        super().__init__()
        self.sim = sim


def data_packet(conn=1, src="b", seq=None):
    packet = RpcPacket(RpcKind.REQUEST, conn, "m", b"", 48, src_address=src,
                       dst_address="a")
    packet.seq = seq
    return packet


def controls(nic, method):
    return [p for _, p in nic.sent
            if p.kind is RpcKind.CONTROL and p.method == method]


# -- KeyError regression (satellite 1) --------------------------------------


def test_first_delivery_out_of_order_does_not_crash():
    """Before the fix: first packet from a peer with seq > 0 (reordered
    ahead of seq 0) hit ``self._delivered[key]`` with no entry."""
    transport = ReliableTransport(FakeNic(), ack_interval=2)
    assert transport.on_delivered(data_packet(seq=1)) is True
    assert transport._out_of_order[(1, "b")] == {1}
    assert transport.on_delivered(data_packet(seq=0)) is True
    assert transport._delivered[(1, "b")] == 1


def test_first_deliveries_from_many_peers():
    transport = ReliableTransport(FakeNic(), ack_interval=2)
    for src in ("b", "c", "d"):
        assert transport.on_delivered(data_packet(src=src, seq=2)) is True
    assert transport.stats.duplicates_dropped == 0


# -- duplicate suppression (satellite 2) -------------------------------------


def test_duplicate_is_suppressed_and_reacked():
    transport = ReliableTransport(FakeNic(), ack_interval=32)
    assert transport.on_delivered(data_packet(seq=0)) is True
    assert transport.on_delivered(data_packet(seq=0)) is False
    assert transport.stats.duplicates_dropped == 1
    # The duplicate means the sender missed our ACK coverage: re-ACK
    # immediately so its buffer frees without waiting for the RTO.
    acks = controls(transport.nic, ACK_METHOD)
    assert len(acks) == 1 and acks[0].payload == 0


def test_duplicate_of_pending_out_of_order_packet_is_suppressed():
    transport = ReliableTransport(FakeNic(), ack_interval=32)
    assert transport.on_delivered(data_packet(seq=3)) is True
    assert transport.on_delivered(data_packet(seq=3)) is False
    assert transport.stats.duplicates_dropped == 1
    # Nothing contiguous delivered yet: no ACK to re-send.
    assert controls(transport.nic, ACK_METHOD) == []


def test_fresh_packets_are_never_flagged_duplicate():
    transport = ReliableTransport(FakeNic(), ack_interval=4)
    for seq in (0, 2, 1, 3):
        assert transport.on_delivered(data_packet(seq=seq)) is True
    assert transport.stats.duplicates_dropped == 0
    assert transport._delivered[(1, "b")] == 3


# -- clone-on-retransmit (satellite 3) ---------------------------------------


def test_nack_retransmits_a_clone_not_the_buffered_alias():
    transport = ReliableTransport(FakeNic(), ack_interval=4)
    packet = RpcPacket(RpcKind.REQUEST, 1, "m", b"", 48, src_address="a",
                       dst_address="b")
    transport.on_egress(packet)
    transport._handle_nack(1, 0)
    _, resent = transport.nic.sent[-1]
    assert resent is not packet  # the aliasing bug
    assert resent.seq == packet.seq
    assert resent.rpc_id == packet.rpc_id
    assert resent.timestamps is not packet.timestamps


# -- stale NACKs -------------------------------------------------------------


def test_nack_behind_cumulative_ack_is_stale_not_lost():
    transport = ReliableTransport(FakeNic(), ack_interval=4)
    for _ in range(4):
        transport.on_egress(
            RpcPacket(RpcKind.REQUEST, 1, "m", b"", 48, src_address="a",
                      dst_address="b"))
    transport._handle_ack(1, 2)
    transport._handle_nack(1, 1)  # a dropped stray duplicate, already ACKed
    assert transport.stats.stale_nacks == 1
    assert transport.stats.retransmissions == 0
    assert transport.stats.lost_unrecoverable == 0


def test_nack_for_given_up_seq_is_stale_not_double_counted():
    transport = ReliableTransport(FakeNic(), ack_interval=4, max_retries=1)
    transport.on_egress(
        RpcPacket(RpcKind.REQUEST, 1, "m", b"", 48, src_address="a",
                  dst_address="b"))
    transport._handle_nack(1, 0)  # retry 1
    transport._handle_nack(1, 0)  # exhausts max_retries: given up
    assert transport.stats.lost_unrecoverable == 1
    transport._handle_nack(1, 0)  # late NACK for the abandoned seq
    assert transport.stats.stale_nacks == 1
    assert transport.stats.lost_unrecoverable == 1  # not counted again


# -- SKIP: closing the hole left by a given-up packet ------------------------


def test_give_up_emits_skip_and_receiver_closes_the_hole():
    sender = ReliableTransport(FakeNic(), ack_interval=4, max_retries=1)
    sender.on_egress(
        RpcPacket(RpcKind.REQUEST, 1, "m", b"", 48, src_address="a",
                  dst_address="b"))
    sender._handle_nack(1, 0)
    sender._handle_nack(1, 0)  # give up -> SKIP
    skips = controls(sender.nic, SKIP_METHOD)
    assert sender.stats.skips_sent == 1
    assert len(skips) == 1 and skips[0].payload == 0

    receiver = ReliableTransport(FakeNic(), ack_interval=32)
    skip = skips[0].clone()
    skip.src_address, skip.dst_address = "a", "b"
    receiver.on_control(skip)
    # The abandoned seq counts as delivered, so later seqs cascade and the
    # immediate ACK lets the sender free anything stalled behind the hole.
    assert receiver._delivered[(1, "a")] == 0
    assert controls(receiver.nic, ACK_METHOD)[0].payload == 0
    nxt = data_packet(src="a", seq=1)
    assert receiver.on_delivered(nxt) is True
    assert receiver._delivered[(1, "a")] == 1


def test_skip_ahead_of_the_hole_parks_until_the_gap_fills():
    receiver = ReliableTransport(FakeNic(), ack_interval=32)
    assert receiver.on_delivered(data_packet(seq=0)) is True
    skip = RpcPacket(RpcKind.CONTROL, 1, SKIP_METHOD, 3, 16,
                     src_address="b", dst_address="a")
    receiver.on_control(skip)
    assert receiver._delivered[(1, "b")] == 0  # hole at 1-2 still open
    assert receiver.on_delivered(data_packet(seq=1)) is True
    assert receiver.on_delivered(data_packet(seq=2)) is True
    assert receiver._delivered[(1, "b")] == 3  # cascaded through the skip


# -- retransmission timeout --------------------------------------------------


def test_rto_retransmits_then_gives_up_without_any_nack():
    sim = Simulator()
    transport = ReliableTransport(SimNic(sim), ack_interval=4,
                                  max_retries=2, rto_ns=1_000)
    transport.on_egress(
        RpcPacket(RpcKind.REQUEST, 1, "m", b"", 48, src_address="a",
                  dst_address="b"))
    sim.run()  # terminates: RTO probes are capped by max_retries
    assert transport.stats.timeout_retransmissions == 2
    assert transport.stats.retransmissions == 2
    assert transport.stats.lost_unrecoverable == 1
    assert transport.unacked == 0
    assert len(controls(transport.nic, SKIP_METHOD)) == 1


def test_ack_before_rto_means_no_timeout_probe():
    sim = Simulator()
    transport = ReliableTransport(SimNic(sim), ack_interval=4,
                                  rto_ns=1_000)
    transport.on_egress(
        RpcPacket(RpcKind.REQUEST, 1, "m", b"", 48, src_address="a",
                  dst_address="b"))
    transport._handle_ack(1, 0)
    sim.run()
    assert transport.stats.timeout_retransmissions == 0
    assert transport._sent_at == {}


def test_rto_disabled_with_none():
    sim = Simulator()
    transport = ReliableTransport(SimNic(sim), ack_interval=4, rto_ns=None)
    transport.on_egress(
        RpcPacket(RpcKind.REQUEST, 1, "m", b"", 48, src_address="a",
                  dst_address="b"))
    sim.run()
    assert transport.stats.retransmissions == 0
    assert transport.unacked == 1  # parked forever; nothing probes it


# -- delayed flush ACK -------------------------------------------------------


def test_short_tail_gets_flush_acked_before_any_rto():
    sim = Simulator()
    transport = ReliableTransport(SimNic(sim), ack_interval=32,
                                  ack_flush_ns=500)
    for seq in range(3):  # far below ack_interval
        assert transport.on_delivered(data_packet(seq=seq)) is True
    sim.run()
    acks = controls(transport.nic, ACK_METHOD)
    assert len(acks) == 1 and acks[0].payload == 2
    assert transport.stats.acks_sent == 1


# -- credit reconciliation (cumulative grants) -------------------------------


def grant(conn, consumed):
    from repro.rpc.congestion import CREDIT_METHOD
    return RpcPacket(RpcKind.CONTROL, conn, CREDIT_METHOD, consumed, 16,
                     src_address="b", dst_address="a")


def spend_all(fc, count, conn=1):
    for _ in range(count):
        assert fc.try_acquire(
            RpcPacket(RpcKind.REQUEST, conn, "m", b"", 48)) is True


def test_later_cumulative_grant_covers_a_lost_one():
    sim = Simulator()
    fc = CreditFlowControl(SimNic(sim), initial_credits=4, credit_batch=2)
    spend_all(fc, 4)
    assert fc.available_credits(1) == 0
    # Grant for consumed=2 was lost on the wire; the next one (consumed=3)
    # supersedes it and restores the full window.
    fc.on_control(grant(1, 3))
    assert fc.available_credits(1) == 3
    assert fc.stats.stale_grants == 0


def test_stale_or_reordered_grant_is_ignored():
    sim = Simulator()
    fc = CreditFlowControl(SimNic(sim), initial_credits=4, credit_batch=2)
    spend_all(fc, 4)
    fc.on_control(grant(1, 3))
    fc.on_control(grant(1, 2))  # reordered behind the one above
    assert fc.stats.stale_grants == 1
    assert fc.available_credits(1) == 3


def test_reconciliation_drains_watchdog_overinjection():
    sim = Simulator()
    fc = CreditFlowControl(SimNic(sim), initial_credits=4, credit_batch=2)
    spend_all(fc, 4)
    tokens = fc._tokens(1)
    tokens.try_put(1)  # what a stall-watchdog repair would inject
    tokens.try_put(1)
    fc.on_control(grant(1, 1))  # target = 4 + 1 - 4 = 1
    assert fc.available_credits(1) == 1


def test_retransmissions_ride_free_of_credits():
    sim = Simulator()
    fc = CreditFlowControl(SimNic(sim), initial_credits=1, credit_batch=2)
    spend_all(fc, 1)
    retransmit = RpcPacket(RpcKind.REQUEST, 1, "m", b"", 48)
    retransmit.seq = 0  # already charged on first transmission
    assert fc.try_acquire(retransmit) is True
    assert fc.available_credits(1) == 0  # and charged no token


def test_stall_watchdog_self_heals_a_lost_grant():
    sim = Simulator()
    fc = CreditFlowControl(SimNic(sim), initial_credits=1, credit_batch=2,
                           grant_timeout_ns=1_000)
    done = []

    def sender():
        yield from fc.acquire(RpcPacket(RpcKind.REQUEST, 1, "m", b"", 48))
        # Second acquire stalls (no grant will ever arrive); the watchdog
        # must inject a token after grant_timeout_ns instead of deadlock.
        yield from fc.acquire(RpcPacket(RpcKind.REQUEST, 1, "m", b"", 48))
        done.append(sim.now)

    sim.spawn(sender())
    sim.run()
    assert done and done[0] >= 1_000
    assert fc.stats.credit_repairs == 1
    assert fc.stats.stalls == 1
