"""Unit tests for wire serialization of IDL messages."""

import pytest

from repro.rpc.errors import SerializationError
from repro.rpc.idl.ast_nodes import FieldDef, MessageDef
from repro.rpc.serialization import decode, encode, roundtrip_check, struct_format

KV = MessageDef("KvRequest", (
    FieldDef("timestamp", "int32"),
    FieldDef("key", "char", 32),
))


def test_struct_format():
    assert struct_format(KV) == "<i32s"


def test_byte_size():
    assert KV.byte_size == 36


def test_encode_decode_roundtrip():
    values = {"timestamp": 42, "key": b"hello"}
    data = encode(KV, values)
    assert len(data) == 36
    decoded = decode(KV, data)
    assert decoded["timestamp"] == 42
    assert decoded["key"] == b"hello".ljust(32, b"\x00")


def test_str_keys_are_encoded():
    data = encode(KV, {"timestamp": 1, "key": "text-key"})
    assert decode(KV, data)["key"].startswith(b"text-key")


def test_missing_field_rejected():
    with pytest.raises(SerializationError, match="missing"):
        encode(KV, {"timestamp": 1})


def test_unknown_field_rejected():
    with pytest.raises(SerializationError, match="unknown"):
        encode(KV, {"timestamp": 1, "key": b"", "extra": 2})


def test_oversized_char_field_rejected():
    with pytest.raises(SerializationError, match="exceeds"):
        encode(KV, {"timestamp": 1, "key": b"x" * 33})


def test_wrong_scalar_type_rejected():
    with pytest.raises(SerializationError):
        encode(KV, {"timestamp": "not an int", "key": b""})


def test_out_of_range_scalar_rejected():
    with pytest.raises(SerializationError):
        encode(KV, {"timestamp": 2 ** 40, "key": b""})


def test_decode_wrong_length_rejected():
    with pytest.raises(SerializationError, match="expected 36 bytes"):
        decode(KV, b"\x00" * 35)


def test_float_fields():
    message = MessageDef("F", (FieldDef("value", "float64"),))
    data = encode(message, {"value": 3.25})
    assert decode(message, data)["value"] == 3.25


def test_all_scalar_widths():
    message = MessageDef("Widths", (
        FieldDef("a", "int8"), FieldDef("b", "uint8"),
        FieldDef("c", "int16"), FieldDef("d", "uint16"),
        FieldDef("e", "int32"), FieldDef("f", "uint32"),
        FieldDef("g", "int64"), FieldDef("h", "uint64"),
    ))
    assert message.byte_size == 1 + 1 + 2 + 2 + 4 + 4 + 8 + 8
    values = dict(a=-1, b=255, c=-2, d=65535, e=-3, f=1, g=-4, h=2 ** 63)
    assert decode(message, encode(message, values)) == values


def test_roundtrip_check_helper():
    assert roundtrip_check(KV, {"timestamp": 5, "key": b"abc"})


def test_field_def_validation():
    with pytest.raises(ValueError):
        FieldDef("x", "string")
    with pytest.raises(ValueError):
        FieldDef("x", "int32", array_len=4)  # arrays only for char
    with pytest.raises(ValueError):
        FieldDef("x", "char")  # bare char not allowed
    with pytest.raises(ValueError):
        FieldDef("x", "char", array_len=0)


def test_message_def_duplicate_fields():
    with pytest.raises(ValueError):
        MessageDef("M", (FieldDef("a", "int32"), FieldDef("a", "int32")))
