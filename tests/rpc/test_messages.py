"""Unit tests for the RPC wire-packet model."""

import pytest

from repro.rpc.messages import HEADER_BYTES, RpcKind, RpcPacket


def test_packet_ids_unique():
    a = RpcPacket(RpcKind.REQUEST, 1, "m", b"", 64)
    b = RpcPacket(RpcKind.REQUEST, 1, "m", b"", 64)
    assert a.rpc_id != b.rpc_id


def test_wire_bytes_include_header():
    packet = RpcPacket(RpcKind.REQUEST, 1, "m", b"", 48)
    assert packet.wire_bytes == 48 + HEADER_BYTES


def test_lines_rounding():
    assert RpcPacket(RpcKind.REQUEST, 1, "m", b"", 1).lines() == 1
    assert RpcPacket(RpcKind.REQUEST, 1, "m", b"", 48).lines() == 1
    assert RpcPacket(RpcKind.REQUEST, 1, "m", b"", 49).lines() == 2
    assert RpcPacket(RpcKind.REQUEST, 1, "m", b"", 500).lines() == 9


def test_negative_payload_rejected():
    with pytest.raises(ValueError):
        RpcPacket(RpcKind.REQUEST, 1, "m", b"", -1)


def test_stamp_records_first_passage_only():
    packet = RpcPacket(RpcKind.REQUEST, 1, "m", b"", 64)
    packet.stamp("x", 100)
    packet.stamp("x", 200)
    assert packet.timestamps["x"] == 100


def test_make_response_swaps_addresses_and_keeps_id():
    request = RpcPacket(RpcKind.REQUEST, 7, "get", b"req", 64,
                        src_address="client", dst_address="server",
                        src_flow=3)
    response = request.make_response(b"resp", 32)
    assert response.kind is RpcKind.RESPONSE
    assert response.rpc_id == request.rpc_id
    assert response.connection_id == 7
    assert response.src_address == "server"
    assert response.dst_address == "client"
    assert response.src_flow == 3
    assert response.payload_bytes == 32


def test_make_response_from_response_rejected():
    request = RpcPacket(RpcKind.REQUEST, 1, "m", b"", 64)
    response = request.make_response(b"", 16)
    with pytest.raises(ValueError):
        response.make_response(b"", 16)


def test_repr_is_informative():
    packet = RpcPacket(RpcKind.REQUEST, 5, "get", b"", 64)
    text = repr(packet)
    assert "get" in text and "conn=5" in text and "64B" in text
