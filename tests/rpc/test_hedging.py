"""Tests for client-side request hedging (tail tolerance, opt-in).

A call still pending after ``hedge_ns`` is re-sent as a brand-new wire
packet with the same ``rpc_id``; whichever response returns first wins
and the loser is dropped by the poller. Hedging duplicates *execution*,
so it is only safe for idempotent methods and stays off by default.

The port here is a fake with a scriptable drop count, so the straggler
is the *first* transmission and the hedge's rescue is observable without
a full chaos rig (that path is covered in tests/chaos/).
"""

from repro.hw.platform import Machine
from repro.rpc import RpcClient
from repro.sim import Simulator
from repro.sim.resources import Store

WIRE_NS = 1_000


class ScriptedPort:
    """Echoes requests back as responses, dropping the first ``drop`` sends."""

    def __init__(self, sim, drop=0):
        self.sim = sim
        self.rx_ring = Store(sim, name="fake-rx")
        self.sent = []
        self.drop = drop

    def cpu_tx_ns(self, packet):
        return 100

    def cpu_rx_ns(self, packet):
        return 100

    def send(self, packet):
        self.sent.append(packet)
        if self.drop > 0:
            self.drop -= 1
            return
        self.sim.spawn(self._echo(packet))
        return
        yield  # pragma: no cover

    def _echo(self, packet):
        yield WIRE_NS
        self.rx_ring.try_put(packet.make_response(packet.payload,
                                                  packet.payload_bytes))


def make_client(drop=0, hedge_ns=None, max_hedges=1, hedge_budget=0.05):
    sim = Simulator()
    machine = Machine(sim)
    port = ScriptedPort(sim, drop=drop)
    client = RpcClient(port, machine.thread(0), connection_id=1,
                       hedge_ns=hedge_ns, max_hedges=max_hedges,
                       hedge_budget=hedge_budget)
    return sim, port, client


def issue(sim, client, count=1):
    calls = []

    def main():
        for _ in range(count):
            call = yield from client.call_async("echo", b"x", 48)
            calls.append(call)

    sim.spawn(main())
    return calls


def test_hedge_rescues_a_lost_request():
    sim, port, client = make_client(drop=1, hedge_ns=10_000)
    calls = issue(sim, client)
    sim.run()
    call = calls[0]
    assert call.done
    assert client.hedges_sent == 1
    assert len(port.sent) == 2  # original + hedge
    # The hedge is a fresh wire-level packet, not the original object.
    assert port.sent[1] is not port.sent[0]
    assert port.sent[1].rpc_id == port.sent[0].rpc_id
    assert port.sent[1].seq is None  # gets its own transport seq
    assert call.latency_ns >= 10_000  # paid the hedge delay, not forever


def test_fast_response_means_no_hedge():
    sim, port, client = make_client(drop=0, hedge_ns=50_000)
    calls = issue(sim, client)
    sim.run()
    assert calls[0].done
    assert client.hedges_sent == 0
    assert len(port.sent) == 1


def test_duplicate_response_is_ignored_by_the_poller():
    # Nothing dropped AND a hedge fires: two responses race for one call.
    sim, port, client = make_client(drop=0, hedge_ns=500)  # < round trip
    calls = issue(sim, client)
    sim.run()
    assert calls[0].done
    assert client.hedges_sent == 1
    assert client.calls_completed == 1  # the loser was silently dropped
    assert client.outstanding == 0


def test_hedge_budget_caps_a_stampede():
    # Budget 0.0 allows exactly 1 + int(0 * issued) = 1 hedge in total:
    # with every send dropped, the second straggler is denied its hedge.
    sim, port, client = make_client(drop=100, hedge_ns=1_000,
                                    hedge_budget=0.0)
    calls = issue(sim, client, count=2)
    sim.run()
    assert client.hedges_sent == 1
    assert client.hedges_denied >= 1
    assert not any(call.done for call in calls)


def test_max_hedges_bounds_resends_per_call():
    sim, port, client = make_client(drop=100, hedge_ns=1_000,
                                    max_hedges=3, hedge_budget=10.0)
    issue(sim, client)
    sim.run()
    assert client.hedges_sent == 3
    assert len(port.sent) == 4  # original + three hedges, then give up


def test_hedging_off_by_default():
    sim, port, client = make_client(drop=1)
    calls = issue(sim, client)
    sim.run()
    assert client.hedge_ns is None
    assert client.hedges_sent == 0
    assert not calls[0].done  # lost for good: no hedge, no transport
