"""Tests for the ``python -m repro`` CLI."""

import pytest

from repro.__main__ import _REGISTRY, main


def test_registry_covers_every_paper_artifact():
    expected = {"table1", "table3", "table4", "fig3", "fig4", "fig5",
                "fig10", "fig11-load", "fig11-scale", "fig11-bottleneck",
                "fig12", "fig14-isolation", "fig15", "sec53", "chaos",
                "mesh", "cluster"}
    assert set(_REGISTRY) == expected


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "fig10" in out
    assert "Table 3" in out


def test_run_cheap_experiments(capsys):
    assert main(["run", "table1", "sec53", "fig4"]) == 0
    out = capsys.readouterr().out
    assert "Table 1" in out
    assert "UPI" in out


def test_run_unknown_experiment(capsys):
    assert main(["run", "fig99"]) == 2
    assert "unknown experiment" in capsys.readouterr().err


def test_calibration_command(capsys):
    assert main(["calibration"]) == 0
    out = capsys.readouterr().out
    assert "upi_oneway_ns" in out
    assert "400" in out


def test_resources_command(capsys):
    assert main(["resources", "--flows", "64",
                 "--connections", "65536"]) == 0
    out = capsys.readouterr().out
    assert "LUTs" in out
    assert "20.0%" in out


def test_resources_with_extensions(capsys):
    assert main(["resources", "--hw-reassembly", "--reliable"]) == 0
    out = capsys.readouterr().out
    assert "instances fitting" in out


def test_missing_command_errors():
    with pytest.raises(SystemExit):
        main([])
