"""Integration tests for the microservice tier/graph framework."""

import pytest

from repro.apps.microservices import CallSpec, MethodSpec, ServiceGraph, TierSpec
from repro.apps.microservices.tier import sample_size
from repro.rpc import ThreadingModel
from repro.sim.distributions import Constant


def two_tier_graph(stack_name="dagger"):
    graph = ServiceGraph(stack_name=stack_name, seed=3)
    graph.add_tier(TierSpec(
        name="backend",
        methods={"handle": MethodSpec(compute=Constant(2000),
                                      response_bytes=32)},
    ))
    graph.add_tier(TierSpec(
        name="frontend",
        methods={"serve": MethodSpec(
            compute=Constant(1000),
            stages=[[CallSpec("backend", payload_bytes=64)]],
            response_bytes=48,
        )},
        num_dispatch_threads=2,
    ))
    return graph


# ----------------------------------------------------------------- specs


def test_sample_size():
    assert sample_size(64) == 64
    assert sample_size(Constant(100)) == 100
    with pytest.raises(ValueError):
        sample_size(0)


def test_tier_spec_validation():
    with pytest.raises(ValueError):
        TierSpec(name="x", methods={})
    with pytest.raises(ValueError):
        TierSpec(name="x", methods={"m": MethodSpec()},
                 num_dispatch_threads=0)
    with pytest.raises(ValueError):
        TierSpec(name="x", methods={"m": MethodSpec()},
                 threading=ThreadingModel.WORKER, num_workers=0)


def test_downstream_targets_deduplicated():
    spec = TierSpec(name="x", methods={
        "a": MethodSpec(stages=[[CallSpec("t1"), CallSpec("t2")]]),
        "b": MethodSpec(stages=[[CallSpec("t1")]]),
    })
    assert spec.downstream_targets == ["t1", "t2"]


# ----------------------------------------------------------------- graph


def test_graph_build_and_run():
    graph = two_tier_graph()
    result = graph.run_load("frontend", {"serve": 1.0}, load_krps=20,
                            nreq=400, warmup_ns=100_000)
    assert result.count > 300
    assert result.drop_rate < 0.01
    # Path: 2 hops (~2 us each) + 3 us compute.
    assert 5 < result.p50_us < 15


def test_graph_records_traces():
    graph = two_tier_graph()
    result = graph.run_load("frontend", {"serve": 1.0}, load_krps=10,
                            nreq=300, warmup_ns=0)
    breakdown = result.tracer.breakdown("backend")
    assert breakdown.count > 0
    assert breakdown.app_p50_us == pytest.approx(2.0, abs=0.5)
    assert 0 < breakdown.app_fraction < 1
    e2e = result.tracer.e2e_breakdown()
    assert e2e.p50_us > breakdown.p50_us


def test_graph_rejects_unknown_downstream():
    graph = ServiceGraph(seed=1)
    graph.add_tier(TierSpec(
        name="lonely",
        methods={"m": MethodSpec(stages=[[CallSpec("ghost")]])},
    ))
    with pytest.raises(ValueError, match="unknown downstream"):
        graph.build()


def test_graph_duplicate_tier():
    graph = ServiceGraph(seed=1)
    graph.add_tier(TierSpec(name="a", methods={"m": MethodSpec()}))
    with pytest.raises(ValueError, match="duplicate"):
        graph.add_tier(TierSpec(name="a", methods={"m": MethodSpec()}))


def test_graph_unknown_entry():
    graph = two_tier_graph()
    with pytest.raises(ValueError, match="unknown entry tier"):
        graph.run_load("nope", {"serve": 1.0}, load_krps=1, nreq=10)


def test_graph_unknown_method():
    graph = two_tier_graph()
    with pytest.raises(ValueError, match="no method"):
        graph.run_load("frontend", {"missing": 1.0}, load_krps=1, nreq=10)


def test_graph_over_modeled_stack():
    graph = two_tier_graph(stack_name="erpc")
    result = graph.run_load("frontend", {"serve": 1.0}, load_krps=10,
                            nreq=300, warmup_ns=0)
    assert result.count > 200
    assert result.p50_us > 5


def test_custom_handler_method():
    graph = ServiceGraph(seed=2)
    seen = []

    def custom(ctx, payload):
        yield from ctx.exec(500)
        seen.append(payload)
        return b"custom", 16

    graph.add_tier(TierSpec(name="svc", methods={"go": custom}))
    result = graph.run_load("svc", {"go": 1.0}, load_krps=5, nreq=100,
                            warmup_ns=0)
    assert result.count == 100
    assert len(seen) == 100


def test_worker_tier_runs():
    graph = ServiceGraph(seed=4)
    graph.add_tier(TierSpec(
        name="svc",
        methods={"m": MethodSpec(compute=Constant(1000),
                                 post_compute_ns=20_000)},
        threading=ThreadingModel.WORKER,
        num_workers=4,
    ))
    result = graph.run_load("svc", {"m": 1.0}, load_krps=50, nreq=300,
                            warmup_ns=0)
    assert result.count == 300
    # 4 workers absorb 50 Krps x 21 us (util ~0.26); latency stays low.
    assert result.p50_us < 20


def test_core_pinning_respected():
    graph = ServiceGraph(seed=5)
    graph.add_tier(TierSpec(
        name="svc",
        methods={"m": MethodSpec()},
        num_dispatch_threads=2,
        cores=[3],
    ))
    graph.build()
    threads = graph.tiers["svc"].dispatch_threads
    assert all(t.core.core_id == 3 for t in threads)


def test_run_load_rejects_zero_weights():
    graph = two_tier_graph()
    with pytest.raises(ValueError, match="sum to > 0"):
        graph.run_load("frontend", {"serve": 0.0}, load_krps=1, nreq=10)


def test_run_load_rejects_nonpositive_load():
    graph = two_tier_graph()
    with pytest.raises(ValueError, match="positive"):
        graph.run_load("frontend", {"serve": 1.0}, load_krps=0, nreq=10)


def test_client_for_unknown_target():
    graph = two_tier_graph()
    graph.build()
    frontend = graph.tiers["frontend"]
    thread = frontend.handler_threads[0]
    with pytest.raises(KeyError, match="no client for target"):
        frontend.client_for(thread, "ghost")


def test_build_twice_rejected():
    graph = two_tier_graph()
    graph.build()
    with pytest.raises(RuntimeError, match="already built"):
        graph.build()
    with pytest.raises(RuntimeError, match="already built"):
        graph.add_tier(TierSpec(name="late", methods={"m": MethodSpec()}))
