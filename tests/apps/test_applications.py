"""Integration tests for the built applications (scaled-down runs)."""


from repro.apps.microservices.flight import DEFAULT_MIX, build_flight_app
from repro.apps.microservices.media import (
    DEFAULT_MIX as MEDIA_MIX,
    media_graph,
)
from repro.apps.microservices.social_network import (
    DEFAULT_MIX as SOCIAL_MIX,
    PROFILED_TIERS,
    social_network_graph,
)


# ---------------------------------------------------------- Social Network


def test_social_network_builds_all_tiers():
    graph = social_network_graph("linux-tcp")
    expected = {"nginx", "compose_post", "media", "user", "unique_id",
                "text", "user_mention", "url_shorten", "post_storage",
                "home_timeline", "user_timeline"}
    assert set(graph.tiers) == expected


def test_social_network_compose_touches_all_profiled_tiers():
    graph = social_network_graph("linux-tcp")
    result = graph.run_load("nginx", {"compose_post": 1.0}, load_krps=2,
                            nreq=200, warmup_ns=0)
    assert result.drop_rate < 0.01
    for tier in PROFILED_TIERS.values():
        assert result.tracer.breakdown(tier).count > 0


def test_social_network_fractions_match_fig3_shape():
    graph = social_network_graph("linux-tcp")
    result = graph.run_load("nginx", SOCIAL_MIX, load_krps=8, nreq=1200,
                            warmup_ns=500_000)
    fractions = {tier: result.tracer.breakdown(tier).network_fraction
                 for tier in PROFILED_TIERS.values()}
    assert fractions["user"] > 0.65
    assert fractions["unique_id"] > 0.65
    assert fractions["text"] < 0.55
    assert sum(fractions.values()) / len(fractions) > 0.40


def test_social_network_over_dagger_is_much_faster():
    tcp = social_network_graph("linux-tcp")
    tcp_result = tcp.run_load("nginx", SOCIAL_MIX, load_krps=5, nreq=600,
                              warmup_ns=0)
    dagger = social_network_graph("dagger")
    dagger_result = dagger.run_load("nginx", SOCIAL_MIX, load_krps=5,
                                    nreq=600, warmup_ns=0)
    assert dagger_result.p50_us < 0.55 * tcp_result.p50_us


# ------------------------------------------------------------ Media Serving


def test_media_builds_and_serves():
    graph = media_graph("linux-tcp")
    result = graph.run_load("nginx", MEDIA_MIX, load_krps=5, nreq=500,
                            warmup_ns=0)
    assert result.drop_rate < 0.01
    assert result.count > 400
    assert result.tracer.breakdown("review_text").count > 0


# ---------------------------------------------------------------- Flight


def test_flight_simple_latency_path():
    app = build_flight_app(optimized=False)
    result = app.run(0.02, nreq=200, warmup_ns=0)
    # Paper: ~13.3 us median at low load under the Simple model.
    assert 9 < result.p50_us < 18
    assert result.drop_rate < 0.01


def test_flight_simple_saturates_low_krps():
    app = build_flight_app(optimized=False)
    result = app.run(3.5, nreq=1500, measure_from_issue=True, warmup_ns=0)
    # Offered 3.5K but the Flight dispatch thread caps near 2.8K.
    assert result.throughput_krps < 3.4
    assert result.p99_us > 300


def test_flight_optimized_higher_latency_higher_throughput():
    app = build_flight_app(optimized=True)
    low = app.run(5, nreq=800, warmup_ns=0)
    assert low.p50_us > 15  # worker hand-off cost
    app = build_flight_app(optimized=True)
    high = app.run(30, nreq=2500, measure_from_issue=True, warmup_ns=0)
    assert high.throughput_krps > 25
    assert high.drop_rate < 0.01


def test_flight_databases_really_store_records():
    app = build_flight_app(optimized=False)
    app.run(0.05, nreq=300, warmup_ns=0)
    # Each passenger registration wrote an Airport record.
    passenger_share = DEFAULT_MIX["passenger_frontend.register"]
    expected = 300 * passenger_share
    assert app.airport_db.total_items > expected * 0.5
    # Staff checks and passport checks actually read the stores.
    assert sum(p.gets for p in app.airport_db.partitions) > 0
    assert sum(p.gets for p in app.citizens_db.partitions) > 0


def test_flight_object_level_balancer_routes_to_owner():
    app = build_flight_app(optimized=False)
    app.run(0.05, nreq=300, warmup_ns=0)
    assert app.airport_db.misrouted == 0
    assert app.citizens_db.misrouted == 0
