"""Unit tests for the request tracer / latency decomposition."""

import pytest

from repro.apps.microservices.tracing import Tracer


def test_breakdown_fractions_sum_to_one():
    tracer = Tracer(transport_oneway_ns=1000, transport_cpu_ns=200)
    for latency in (10_000, 12_000, 11_000):
        tracer.record_call("tier", latency)
    tracer.record_compute("tier", 4_000)
    breakdown = tracer.breakdown("tier")
    total = (breakdown.app_fraction + breakdown.rpc_fraction
             + breakdown.transport_fraction)
    assert total == pytest.approx(1.0)
    assert breakdown.network_fraction == pytest.approx(
        breakdown.rpc_fraction + breakdown.transport_fraction
    )
    assert breakdown.count == 3


def test_breakdown_app_share():
    tracer = Tracer(transport_oneway_ns=0, transport_cpu_ns=0)
    tracer.record_call("tier", 10_000)
    tracer.record_compute("tier", 4_000)
    breakdown = tracer.breakdown("tier")
    assert breakdown.app_fraction == pytest.approx(0.4)
    assert breakdown.rpc_fraction == pytest.approx(0.6)
    assert breakdown.transport_fraction == 0.0


def test_transport_capped_by_networking():
    # Huge configured transport cannot exceed the observed networking time.
    tracer = Tracer(transport_oneway_ns=100_000, transport_cpu_ns=0)
    tracer.record_call("tier", 10_000)
    tracer.record_compute("tier", 5_000)
    breakdown = tracer.breakdown("tier")
    assert breakdown.transport_fraction == pytest.approx(0.5)
    assert breakdown.rpc_fraction == pytest.approx(0.0)


def test_nested_time_subtracted():
    tracer = Tracer()
    tracer.record_call("tier", 50_000, rpc_id=1)
    tracer.record_nested("tier", 1, 30_000)
    assert tracer.local_latencies("tier") == [20_000]
    tracer.record_call("tier", 10_000, rpc_id=2)  # no nested record
    assert tracer.local_latencies("tier") == [20_000, 10_000]


def test_nested_never_negative():
    tracer = Tracer()
    tracer.record_call("tier", 5_000, rpc_id=1)
    tracer.record_nested("tier", 1, 9_000)
    assert tracer.local_latencies("tier") == [0]


def test_unknown_tier_raises():
    with pytest.raises(KeyError):
        Tracer().breakdown("ghost")


def test_e2e_breakdown():
    tracer = Tracer()
    with pytest.raises(KeyError):
        tracer.e2e_breakdown()
    tracer.record_e2e(100_000)
    tracer.record_e2e(120_000)
    breakdown = tracer.e2e_breakdown()
    assert breakdown.tier == "e2e"
    assert breakdown.count == 2
    assert breakdown.p50_us == pytest.approx(110.0)


def test_tiers_listing():
    tracer = Tracer()
    tracer.record_call("b", 1)
    tracer.record_call("a", 1)
    assert tracer.tiers() == ["a", "b"]
