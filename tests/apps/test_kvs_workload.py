"""Integration tests for the KVS workload driver (scaled down)."""

import pytest

from repro.apps.kvs import run_kvs_workload
from repro.apps.kvs.client import encode_key, generate_ops, kvs_idl, make_value


def test_kvs_idl_shapes():
    namespace = kvs_idl(8, 8)
    assert namespace["GetRequest"].BYTE_SIZE == 8
    assert namespace["SetRequest"].BYTE_SIZE == 16
    namespace_small = kvs_idl(16, 32)
    assert namespace_small["SetRequest"].BYTE_SIZE == 48


def test_kvs_idl_cached():
    assert kvs_idl(8, 8) is kvs_idl(8, 8)


def test_kvs_idl_key_floor():
    with pytest.raises(ValueError):
        kvs_idl(4, 8)


def test_encode_key_unique_and_sized():
    keys = {encode_key(i, 16) for i in range(1000)}
    assert len(keys) == 1000
    assert all(len(k) == 16 for k in keys)


def test_make_value_sized():
    assert len(make_value(7, 32)) == 32
    assert len(make_value(7, 8)) == 8


def test_generate_ops_mix_and_range():
    ops = generate_ops(2000, num_keys=1000, get_fraction=0.9, seed=3)
    gets = sum(1 for op, _ in ops if op == "get")
    assert abs(gets / len(ops) - 0.9) < 0.03
    assert all(0 <= idx < 1000 for _, idx in ops)


def test_generate_ops_deterministic():
    a = generate_ops(100, 50, 0.5, seed=1)
    b = generate_ops(100, 50, 0.5, seed=1)
    assert a == b


def test_generate_ops_validation():
    with pytest.raises(ValueError):
        generate_ops(10, 10, get_fraction=1.5)


def test_mica_workload_end_to_end():
    result = run_kvs_workload(system="mica", nreq=1500, num_keys=100_000,
                              closed_loop_window=16)
    assert result.hit_rate == 1.0  # every touched key was populated
    assert result.drop_rate < 0.01
    assert 2.0 < result.throughput_mrps < 6.5
    assert result.p50_us > 1.5
    assert result.misrouted == 0  # object-level LB routes correctly


def test_memcached_workload_end_to_end():
    result = run_kvs_workload(system="memcached", nreq=1000,
                              num_keys=100_000, closed_loop_window=4)
    assert result.hit_rate == 1.0
    assert 0.3 < result.throughput_mrps < 1.2
    assert result.p99_us > result.p50_us


def test_mica_round_robin_misroutes():
    result = run_kvs_workload(system="mica", nreq=1500, num_keys=100_000,
                              num_threads=2, load_balancer="round-robin",
                              closed_loop_window=16, warmup_ns=20_000)
    # With 2 partitions and uniform steering, ~half the requests misroute.
    assert result.misrouted > 400


def test_unknown_system_rejected():
    with pytest.raises(ValueError, match="unknown KVS system"):
        run_kvs_workload(system="redis", nreq=10)


def test_over_baseline_stack():
    result = run_kvs_workload(system="mica", stack_name="linux-tcp",
                              nreq=400, num_keys=10_000,
                              closed_loop_window=4, warmup_ns=50_000)
    # Kernel networking dominates MICA access latency (the 4-5x gap).
    assert result.p50_us > 25
