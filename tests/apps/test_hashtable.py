"""Unit tests for the chained hash table."""

import pytest

from repro.apps.kvs.hashtable import ChainedHashTable


def test_set_get_roundtrip():
    table = ChainedHashTable(16)
    assert table.set(b"k", b"v")  # new key
    assert table.get(b"k") == b"v"
    assert not table.set(b"k", b"v2")  # update
    assert table.get(b"k") == b"v2"
    assert len(table) == 1


def test_get_missing_returns_none():
    table = ChainedHashTable(16)
    assert table.get(b"missing") is None


def test_delete():
    table = ChainedHashTable(16)
    table.set(b"k", b"v")
    assert table.delete(b"k")
    assert table.get(b"k") is None
    assert not table.delete(b"k")
    assert len(table) == 0


def test_chaining_under_collisions():
    table = ChainedHashTable(1)  # everything collides
    for i in range(20):
        table.set(b"k%d" % i, b"v%d" % i)
    assert len(table) == 20
    for i in range(20):
        assert table.get(b"k%d" % i) == b"v%d" % i
    assert table.chain_length(b"k0") == 20


def test_versions_bump_on_writes():
    table = ChainedHashTable(4)
    v0 = table.version_of(b"k")
    table.set(b"k", b"v")
    v1 = table.version_of(b"k")
    assert v1 == v0 + 1
    table.set(b"k", b"v2")
    assert table.version_of(b"k") == v1 + 1
    table.delete(b"k")
    assert table.version_of(b"k") == v1 + 2


def test_reads_do_not_bump_versions():
    table = ChainedHashTable(4)
    table.set(b"k", b"v")
    version = table.version_of(b"k")
    table.get(b"k")
    assert table.version_of(b"k") == version


def test_contains_and_items():
    table = ChainedHashTable(8)
    table.set(b"a", b"1")
    table.set(b"b", b"2")
    assert b"a" in table
    assert b"c" not in table
    assert dict(table.items()) == {b"a": b"1", b"b": b"2"}


def test_type_checks():
    table = ChainedHashTable(8)
    with pytest.raises(TypeError):
        table.get("str")
    with pytest.raises(TypeError):
        table.set(b"k", "str")


def test_bucket_count_validation():
    with pytest.raises(ValueError):
        ChainedHashTable(0)
