"""Unit tests for the memcached and MICA functional servers."""

import random

import pytest

from repro.apps.kvs.memcached import MEMCACHED_COSTS, KvsCosts, MemcachedServer
from repro.apps.kvs.mica import (
    CROSS_PARTITION_PENALTY_NS,
    MICA_COSTS,
    MicaServer,
    mica_key_hash,
)


# ----------------------------------------------------------------- costs


def test_costs_scale_with_size():
    costs = KvsCosts(get_ns=100, set_ns=200, per_byte_ns=1.0)
    assert costs.get_cost(8, 8) == 116
    assert costs.set_cost(16, 32) == 248


def test_costs_slow_fraction():
    costs = KvsCosts(get_ns=100, set_ns=200, slow_fraction=1.0,
                     slow_extra_ns=500)
    assert costs.get_cost(8, 8, random.Random(1)) == 600
    assert costs.get_cost(8, 8, rng=None) == 100  # no rng -> no slow path


def test_set_split_inline_and_deferred():
    costs = KvsCosts(get_ns=100, set_ns=2000, set_inline_ns=500)
    inline, deferred = costs.set_split(8, 8)
    assert inline == 500
    assert deferred == 1500
    assert inline + deferred == costs.set_cost(8, 8)


def test_set_split_fully_inline_by_default():
    costs = KvsCosts(get_ns=100, set_ns=300)
    assert costs.set_split(8, 8) == (300, 0)


def test_memcached_costs_anchor():
    # 50/50 mix lands near 0.6 Mrps worth of service time.
    mix = (MEMCACHED_COSTS.get_cost(8, 8)
           + MEMCACHED_COSTS.set_cost(8, 8)) / 2
    assert 1300 < mix < 1700
    assert MICA_COSTS.get_cost(8, 8) < MEMCACHED_COSTS.get_cost(8, 8) / 3


# -------------------------------------------------------------- memcached


def test_memcached_get_set():
    server = MemcachedServer()
    assert server.do_get(b"k") is None
    server.do_set(b"k", b"v")
    assert server.do_get(b"k") == b"v"
    assert server.gets == 2
    assert server.sets == 1
    assert server.hits == 1
    assert server.hit_rate == 0.5


def test_memcached_populate():
    server = MemcachedServer()
    server.populate([(b"a", b"1"), (b"b", b"2")])
    assert server.do_get(b"a") == b"1"
    assert server.sets == 0  # bulk load is cost/stat free


# ------------------------------------------------------------------- MICA


def test_mica_key_hash_deterministic():
    assert mica_key_hash(b"key") == mica_key_hash(b"key")
    assert mica_key_hash(b"a") != mica_key_hash(b"b")
    assert 0 <= mica_key_hash(b"anything") < 2 ** 64


def test_mica_partitioning_is_exclusive():
    server = MicaServer(num_partitions=4)
    server.populate([(b"k%d" % i, b"v") for i in range(100)])
    total = sum(len(p.table) for p in server.partitions)
    assert total == 100
    for i in range(100):
        key = b"k%d" % i
        owner = server.owner_of(key)
        assert server.partitions[owner].table.get(key) == b"v"


def test_mica_correct_partition_no_penalty():
    server = MicaServer(num_partitions=2)
    key = b"key"
    owner = server.owner_of(key)
    assert server.cross_partition_penalty_ns(key, owner) == 0
    server.do_set(key, b"v", owner)
    assert server.misrouted == 0
    assert server.do_get(key, owner) == b"v"


def test_mica_wrong_partition_penalized_but_correct():
    server = MicaServer(num_partitions=2)
    key = b"key"
    owner = server.owner_of(key)
    wrong = 1 - owner
    assert (server.cross_partition_penalty_ns(key, wrong)
            == CROSS_PARTITION_PENALTY_NS)
    server.do_set(key, b"v", wrong)
    assert server.misrouted == 1
    # Data still lands in the owner's partition (correctness preserved).
    assert server.partitions[owner].table.get(key) == b"v"
    assert server.do_get(key, owner) == b"v"


def test_mica_no_handling_partition_means_no_penalty():
    server = MicaServer(num_partitions=2)
    assert server.cross_partition_penalty_ns(b"k", None) == 0
    server.do_set(b"k", b"v", None)
    assert server.misrouted == 0


def test_mica_hit_rate_and_totals():
    server = MicaServer(num_partitions=2)
    server.populate([(b"a", b"1")])
    server.do_get(b"a")
    server.do_get(b"zzz")
    assert server.total_items == 1
    assert server.hit_rate == 0.5


def test_mica_partition_count_validation():
    with pytest.raises(ValueError):
        MicaServer(num_partitions=0)
