"""Tests for the cluster model and the multi-core KVS driver."""

import pytest

from repro.apps.kvs.cluster_bench import run_kvs_multicore
from repro.hw.cluster import Cluster
from repro.sim import Simulator


def test_cluster_builds_independent_machines():
    sim = Simulator()
    cluster = Cluster(sim, 3)
    assert len(cluster) == 3
    a, b = cluster.machine(0), cluster.machine(1)
    assert a is not b
    assert a.fpga is not b.fpga
    assert a.fpga.upi_endpoint is not b.fpga.upi_endpoint


def test_cluster_index_bounds():
    cluster = Cluster(Simulator(), 2)
    with pytest.raises(IndexError):
        cluster.machine(2)
    with pytest.raises(ValueError):
        Cluster(Simulator(), 0)


def test_cluster_switch_uses_tor_delay():
    cluster = Cluster(Simulator(), 2)
    assert cluster.switch.delay_ns == cluster.calibration.tor_delay_ns


def test_multicore_mica_runs_and_scales():
    one = run_kvs_multicore(server_threads=1, nreq_per_thread=1200,
                            num_keys=50_000)
    two = run_kvs_multicore(server_threads=2, nreq_per_thread=1200,
                            num_keys=50_000)
    assert two.throughput_mrps > 1.4 * one.throughput_mrps
    assert one.drop_rate < 0.01
    assert two.drop_rate < 0.01


def test_multicore_memcached_supported():
    result = run_kvs_multicore(system="memcached", server_threads=2,
                               nreq_per_thread=600, num_keys=20_000,
                               get_fraction=0.95)
    assert result.throughput_mrps > 1.0


def test_multicore_unknown_system():
    with pytest.raises(ValueError):
        run_kvs_multicore(system="rocksdb", server_threads=1,
                          nreq_per_thread=10)
