"""Sweep executor tests: caching, fan-out, and the bit-exactness contract.

The headline guarantees (ISSUE acceptance criteria): a sweep run with
``jobs=4`` and a sweep served from the cache both return results
bit-identical to a serial cold run.
"""

import dataclasses
import json
import os

import pytest

from repro.harness.runner import BenchResult
from repro.harness.sweep import (
    SweepPoint,
    cache_info,
    calibration_fingerprint,
    clear_cache,
    decode_result,
    encode_result,
    execute_point,
    run_sweep,
)

#: Cheap deterministic point function (resolved by dotted path, also from
#: worker processes). Pure: output depends only on the parameters.
def synth_point(scale, shift=0.0):
    return {
        "value": scale * 0.1 + shift,
        "series": [scale * f for f in (0.25, 0.5, 0.75)],
        "label": f"s{scale}",
    }


SYNTH = "tests.harness.test_sweep:synth_point"
CLOSED_LOOP = "repro.harness.runner:run_closed_loop"


def synth_points(n=3):
    return [SweepPoint(SYNTH, {"scale": i + 1}) for i in range(n)]


class TestSweepPoint:
    def test_fn_path_must_have_colon(self):
        with pytest.raises(ValueError, match="package.module:function"):
            SweepPoint("repro.harness.runner.run_closed_loop")

    def test_params_must_be_jsonable(self):
        with pytest.raises(ValueError, match="JSON-serializable"):
            SweepPoint(SYNTH, {"bad": object()})

    def test_resolve(self):
        assert SweepPoint(SYNTH, {}).resolve() is synth_point

    def test_resolve_missing_attribute(self):
        with pytest.raises(AttributeError):
            SweepPoint("repro.harness.sweep:not_a_function").resolve()

    def test_cache_key_is_stable_and_discriminates(self):
        fp = calibration_fingerprint()
        a1 = SweepPoint(SYNTH, {"scale": 1}).cache_key(fp)
        a2 = SweepPoint(SYNTH, {"scale": 1}).cache_key(fp)
        b = SweepPoint(SYNTH, {"scale": 2}).cache_key(fp)
        c = SweepPoint(CLOSED_LOOP, {"scale": 1}).cache_key(fp)
        assert a1 == a2
        assert len({a1, b, c}) == 3

    def test_cache_key_covers_calibration(self):
        point = SweepPoint(SYNTH, {"scale": 1})
        assert point.cache_key("aaaa") != point.cache_key("bbbb")


class TestResultCodec:
    def test_bench_result_roundtrip(self):
        result = BenchResult(throughput_mrps=1.5, p50_us=2.0, p90_us=3.0,
                             p99_us=4.0, mean_us=2.5, count=100, drops=2)
        decoded = decode_result(json.loads(json.dumps(
            encode_result(result))))
        assert isinstance(decoded, BenchResult)
        assert decoded == result

    def test_nested_containers_roundtrip(self):
        value = {"rows": [{"a": 1.25, "b": None}, {"a": True}],
                 "pair": (1, 2)}
        decoded = decode_result(json.loads(json.dumps(
            encode_result(value))))
        assert decoded == {"rows": [{"a": 1.25, "b": None}, {"a": True}],
                           "pair": [1, 2]}  # tuples come back as lists

    def test_generic_dataclass_flattens_to_dict(self):
        @dataclasses.dataclass
        class Row:
            x: int
            y: float

        assert encode_result(Row(1, 2.5)) == {"x": 1, "y": 2.5}

    def test_rejects_non_jsonable_results(self):
        with pytest.raises(TypeError):
            encode_result(object())

    def test_rejects_reserved_kind_key(self):
        with pytest.raises(ValueError, match="__kind__"):
            encode_result({"__kind__": "sneaky"})


class TestExecutorAndCache:
    def test_results_in_input_order(self, tmp_path):
        results = run_sweep(synth_points(4), cache_dir=str(tmp_path))
        assert [r["label"] for r in results] == ["s1", "s2", "s3", "s4"]

    def test_two_serial_runs_identical(self, tmp_path):
        points = synth_points()
        first = run_sweep(points, cache=False, cache_dir=str(tmp_path))
        second = run_sweep(points, cache=False, cache_dir=str(tmp_path))
        assert first == second

    def test_cold_vs_cached_identical(self, tmp_path):
        points = synth_points()
        cold_stats, warm_stats = {}, {}
        cold = run_sweep(points, cache_dir=str(tmp_path), stats=cold_stats)
        warm = run_sweep(points, cache_dir=str(tmp_path), stats=warm_stats)
        assert cold == warm
        assert cold_stats == {"hits": 0, "misses": len(points)}
        assert warm_stats == {"hits": len(points), "misses": 0}

    def test_serial_vs_parallel_identical(self, tmp_path):
        points = synth_points(5)
        serial = run_sweep(points, jobs=1, cache=False,
                           cache_dir=str(tmp_path))
        parallel = run_sweep(points, jobs=4, cache=False,
                             cache_dir=str(tmp_path))
        assert serial == parallel

    def test_cache_disabled_writes_nothing(self, tmp_path):
        run_sweep(synth_points(), cache=False, cache_dir=str(tmp_path))
        assert cache_info(str(tmp_path))["entries"] == 0

    def test_partial_cache_mixes_hits_and_misses(self, tmp_path):
        points = synth_points(4)
        run_sweep(points[:2], cache_dir=str(tmp_path))
        stats = {}
        results = run_sweep(points, cache_dir=str(tmp_path), stats=stats)
        assert stats == {"hits": 2, "misses": 2}
        assert [r["label"] for r in results] == ["s1", "s2", "s3", "s4"]

    def test_corrupt_cache_entry_is_recomputed(self, tmp_path):
        points = synth_points(1)
        run_sweep(points, cache_dir=str(tmp_path))
        [entry] = os.listdir(tmp_path)
        # A torn/corrupt entry must not poison the sweep; json.loads on a
        # cached payload happens in run_sweep, so corrupt it fully.
        os.unlink(tmp_path / entry)
        stats = {}
        results = run_sweep(points, cache_dir=str(tmp_path), stats=stats)
        assert stats == {"hits": 0, "misses": 1}
        assert results[0]["label"] == "s1"

    def test_clear_cache_and_info(self, tmp_path):
        run_sweep(synth_points(3), cache_dir=str(tmp_path))
        info = cache_info(str(tmp_path))
        assert info["entries"] == 3
        assert info["bytes"] > 0
        assert clear_cache(str(tmp_path)) == 3
        assert cache_info(str(tmp_path))["entries"] == 0

    def test_jobs_must_be_positive(self, tmp_path):
        with pytest.raises(ValueError, match="jobs"):
            run_sweep(synth_points(1), jobs=0, cache_dir=str(tmp_path))

    def test_execute_point_payload_is_canonical(self):
        payload = execute_point(SYNTH, json.dumps({"scale": 2}))
        assert payload == json.dumps(json.loads(payload), sort_keys=True,
                                     separators=(",", ":"))


class TestSimulationBitExactness:
    """The acceptance-criteria checks, on real simulation results."""

    POINTS = [
        SweepPoint(CLOSED_LOOP, {"batch_size": 1, "nreq": 2000}),
        SweepPoint(CLOSED_LOOP, {"batch_size": 4, "nreq": 2000}),
    ]

    def test_parallel_and_cache_match_serial_cold_run(self, tmp_path):
        serial_dir = tmp_path / "serial"
        parallel_dir = tmp_path / "parallel"
        serial = run_sweep(self.POINTS, jobs=1, cache_dir=str(serial_dir))
        parallel = run_sweep(self.POINTS, jobs=4,
                             cache_dir=str(parallel_dir))
        cached = run_sweep(self.POINTS, jobs=1, cache_dir=str(serial_dir))

        assert all(isinstance(r, BenchResult) for r in serial)
        # Dataclass equality compares every float field bit-for-bit.
        assert serial == parallel
        assert serial == cached
        # And the raw cache payloads are byte-identical across runs.
        serial_entries = sorted(os.listdir(serial_dir))
        assert serial_entries == sorted(os.listdir(parallel_dir))
        for name in serial_entries:
            assert ((serial_dir / name).read_bytes()
                    == (parallel_dir / name).read_bytes())
