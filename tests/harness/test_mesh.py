"""Multi-host echo mesh: shard parity and harness integration."""

import pytest

from repro.harness import EchoRig
from repro.harness.experiments import mesh_scaling
from repro.harness.mesh import (
    MeshResult,
    mesh_signature,
    run_echo_mesh,
)
from repro.harness.sweep import SweepPoint, run_sweep

#: Small enough for unit-test wall time, dense enough for real traffic.
MESH_KW = dict(hosts=2, nreq_per_host=200, warmup_ns=0)


def probe_sharded(value: int = 0, shards: int = 1) -> dict:
    return {"value": value, "shards": shards}


def probe_plain(value: int = 0) -> dict:
    return {"value": value}


def probe_window_mode(value: int = 0, window_mode: str = "adaptive") -> dict:
    return {"value": value, "window_mode": window_mode}


def test_mesh_serial_vs_sharded_signature():
    serial = run_echo_mesh(shards=1, **MESH_KW)
    sharded = run_echo_mesh(shards=2, **MESH_KW)
    assert serial.shards == 1 and sharded.shards == 2
    assert mesh_signature(serial) == mesh_signature(sharded)
    # The signature must exclude only the shard count.
    assert serial.count == sharded.count
    assert serial.events_per_host == sharded.events_per_host
    assert serial.windows == sharded.windows


def test_mesh_fixed_vs_adaptive_signature():
    # Window policy is engine plumbing: the measured payload must be
    # byte-identical across modes at every shard count.
    fixed = run_echo_mesh(shards=2, window_mode="fixed", **MESH_KW)
    adaptive = run_echo_mesh(shards=2, window_mode="adaptive", **MESH_KW)
    assert fixed.window_mode == "fixed"
    assert adaptive.window_mode == "adaptive"
    assert mesh_signature(fixed) == mesh_signature(adaptive)
    assert adaptive.windows <= fixed.windows
    assert fixed.stretched_windows == 0


def test_mesh_adaptive_accounting_populated():
    result = run_echo_mesh(shards=2, **MESH_KW)
    assert result.window_mode == "adaptive"
    assert result.windows > 0
    assert result.boundary_packets > 0
    assert result.boundary_bytes > 0


def test_mesh_rejects_bad_window_mode():
    with pytest.raises(ValueError, match="window_mode"):
        run_echo_mesh(window_mode="loose", **MESH_KW)


def test_mesh_repeat_runs_identical():
    first = run_echo_mesh(shards=2, **MESH_KW)
    second = run_echo_mesh(shards=2, **MESH_KW)
    assert mesh_signature(first) == mesh_signature(second)


def test_mesh_completes_all_requests():
    result = run_echo_mesh(**MESH_KW)
    assert result.count > 0
    assert result.drops == 0
    for host in result.per_host:
        assert host["completed"] == host["issued"]


def test_mesh_signature_accepts_dict_roundtrip():
    result = run_echo_mesh(**MESH_KW)
    assert mesh_signature(result.to_dict()) == mesh_signature(result)
    assert MeshResult.from_dict(result.to_dict()) == result


def test_mesh_rejects_single_host():
    with pytest.raises(ValueError):
        run_echo_mesh(hosts=1)


def test_run_sweep_injects_shards_when_accepted():
    points = [SweepPoint("tests.harness.test_mesh:probe_sharded",
                         {"value": 1})]
    results = run_sweep(points, cache=False, shards=2)
    assert results == [{"value": 1, "shards": 2}]


def test_run_sweep_keeps_pinned_shards():
    points = [SweepPoint("tests.harness.test_mesh:probe_sharded",
                         {"value": 1, "shards": 3})]
    results = run_sweep(points, cache=False, shards=2)
    assert results == [{"value": 1, "shards": 3}]


def test_run_sweep_skips_shard_unaware_points():
    points = [SweepPoint("tests.harness.test_mesh:probe_plain",
                         {"value": 1})]
    results = run_sweep(points, cache=False, shards=2)
    assert results == [{"value": 1}]


def test_run_sweep_validates_shards():
    with pytest.raises(ValueError, match="shards"):
        run_sweep([], shards=0)


def test_run_sweep_injects_window_mode_when_accepted():
    points = [SweepPoint("tests.harness.test_mesh:probe_window_mode",
                         {"value": 1})]
    results = run_sweep(points, cache=False, window_mode="fixed")
    assert results == [{"value": 1, "window_mode": "fixed"}]


def test_run_sweep_keeps_pinned_window_mode():
    points = [SweepPoint("tests.harness.test_mesh:probe_window_mode",
                         {"value": 1, "window_mode": "adaptive"})]
    results = run_sweep(points, cache=False, window_mode="fixed")
    assert results == [{"value": 1, "window_mode": "adaptive"}]


def test_run_sweep_validates_window_mode():
    with pytest.raises(ValueError, match="window_mode"):
        run_sweep([], window_mode="loose")


def test_jobs_and_shards_compose():
    # jobs parallelize across grid cells, shards inside one cell; the two
    # layered process pools must not perturb results.
    points = [SweepPoint("repro.harness.mesh:run_echo_mesh",
                         dict(shards=shards, **MESH_KW))
              for shards in (1, 2)]
    serial_jobs = run_sweep(points, jobs=1, cache=False)
    parallel_jobs = run_sweep(points, jobs=2, cache=False)
    signatures = {mesh_signature(result)
                  for result in serial_jobs + parallel_jobs}
    assert len(signatures) == 1


def test_echo_rig_rejects_sharding():
    with pytest.raises(ValueError, match="single-machine"):
        EchoRig(shards=2)


def test_mesh_scaling_reports_parity():
    # mesh_scaling uses run_echo_mesh's default warmup (20 us), so the run
    # needs enough requests for samples to outlive it.
    rows = mesh_scaling(shard_counts=[1, 2], hosts=2, nreq_per_host=1000,
                        cache=False)
    assert [row["shards"] for row in rows] == [1, 2]
    assert all(row["parity"] for row in rows)
    assert rows[0]["throughput_mrps"] == rows[1]["throughput_mrps"]
