"""Sketch-mode recording threaded through the harness (ISSUE 8).

Exact mode must stay byte-for-byte the historical behaviour (the
BENCH_kernel.json contract lives in benchmarks); these tests pin the
sketch path: bounded memory, percentiles within the sketch's relative
accuracy of exact mode, and shard parity without retained samples.
"""

import dataclasses

import pytest

from repro.chaos import run_chaos_point
from repro.harness import EchoRig
from repro.harness.mesh import mesh_signature, run_echo_mesh
from repro.harness.runner import run_closed_loop, run_multi_tenant
from repro.harness.sweep import SweepPoint, run_sweep

RUN_KW = dict(window=16, nreq=1500)


def test_echo_rig_modes_agree_within_sketch_accuracy():
    exact = EchoRig().closed_loop(**RUN_KW)
    sketched = EchoRig(mode="sketch").closed_loop(**RUN_KW)
    assert sketched.count == exact.count
    assert sketched.throughput_mrps == exact.throughput_mrps
    for attr in ("p50_us", "p90_us", "p99_us"):
        assert getattr(sketched, attr) == pytest.approx(
            getattr(exact, attr), rel=0.011)
    assert sketched.mean_us == pytest.approx(exact.mean_us, rel=1e-9)


def test_run_closed_loop_mode_passthrough_deterministic():
    first = run_closed_loop(mode="sketch", **RUN_KW)
    second = run_closed_loop(mode="sketch", **RUN_KW)
    assert first == second


def test_rig_rejects_unknown_mode():
    with pytest.raises(ValueError, match="mode"):
        EchoRig(mode="approx")
    with pytest.raises(ValueError, match="mode"):
        run_echo_mesh(hosts=2, nreq_per_host=10, mode="approx")
    with pytest.raises(ValueError, match="mode"):
        run_chaos_point(nreq=10, mode="approx")


def test_mesh_sketch_mode_shard_parity():
    kw = dict(hosts=2, nreq_per_host=200, warmup_ns=0, mode="sketch")
    serial = run_echo_mesh(shards=1, **kw)
    sharded = run_echo_mesh(shards=2, **kw)
    # Lossless sketch merge: per-host sketches survive sharding, so the
    # signature (which excludes shards and mode) matches exactly.
    assert mesh_signature(serial) == mesh_signature(sharded)
    assert serial.mode == sharded.mode == "sketch"
    assert "mode" not in mesh_signature(serial)
    assert "mode" not in serial.signature()


def test_mesh_sketch_close_to_exact():
    kw = dict(hosts=2, nreq_per_host=200, warmup_ns=0)
    exact = run_echo_mesh(**kw)
    sketched = run_echo_mesh(mode="sketch", **kw)
    assert sketched.count == exact.count
    assert sketched.p99_us == pytest.approx(exact.p99_us, rel=0.011)
    # Per-host rollups survive the sketch path with the same shape.
    for sk_host, ex_host in zip(sketched.per_host, exact.per_host):
        assert set(sk_host) == set(ex_host)
        assert sk_host["count"] == ex_host["count"]
        assert sk_host["p99_us"] == pytest.approx(ex_host["p99_us"],
                                                  rel=0.011)


def test_chaos_sketch_mode_tagged_and_close():
    kw = dict(fault_class="loss", nreq=800, seed=3)
    exact = run_chaos_point(**kw)
    sketched = run_chaos_point(mode="sketch", **kw)
    assert "mode" not in exact  # historic exact payload untouched
    assert sketched["mode"] == "sketch"
    assert sketched["completed"] == exact["completed"]
    assert sketched["p99_us"] == pytest.approx(exact["p99_us"], rel=0.02)


def test_run_sweep_injects_mode_opt_in(tmp_path):
    points = [SweepPoint("repro.harness.runner:run_closed_loop",
                         dict(RUN_KW, nreq=1200))]
    sketched = run_sweep(points, mode="sketch", cache=False,
                         cache_dir=str(tmp_path))[0]
    exact = run_sweep(points, cache=False, cache_dir=str(tmp_path))[0]
    assert sketched.count == exact.count
    assert sketched.p99_us == pytest.approx(exact.p99_us, rel=0.011)
    # A pinned mode in the point params wins over the sweep-level value.
    pinned = [SweepPoint("repro.harness.runner:run_closed_loop",
                         dict(RUN_KW, nreq=1200, mode="exact"))]
    repinned = run_sweep(pinned, mode="sketch", cache=False,
                         cache_dir=str(tmp_path))[0]
    assert dataclasses.astuple(repinned) == dataclasses.astuple(exact)


def test_multi_tenant_mode_threading():
    exact = run_multi_tenant(noisy_mrps=1.0, nreq_total=900)
    sketched = run_multi_tenant(noisy_mrps=1.0, nreq_total=900,
                                mode="sketch")
    assert set(sketched.per_tenant) == set(exact.per_tenant)
    for tenant, result in sketched.per_tenant.items():
        assert result.count == exact.per_tenant[tenant].count
        assert result.p99_us == pytest.approx(
            exact.per_tenant[tenant].p99_us, rel=0.011)
