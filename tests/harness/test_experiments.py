"""Tests for the cheap experiment entry points (expensive ones are
exercised by the benchmark suite)."""


from repro.harness.experiments import (
    FIG10_PAPER,
    FIG12_PAPER,
    TABLE3_PAPER,
    TABLE4_PAPER,
    fig4_rpc_sizes,
    fig11_bottleneck,
    sec53_raw_access,
    table1_resources,
)


def test_table1_structure():
    rows = table1_resources()
    assert len(rows) == 5
    for row in rows:
        assert {"parameter", "paper", "measured"} <= set(row)


def test_table1_anchors():
    by_name = {r["parameter"]: r for r in table1_resources()}
    luts = by_name["FPGA resource usage, LUT (K)"]
    assert abs(luts["measured"] - 87.1) < 4


def test_sec53_raw_access_values():
    result = sec53_raw_access()
    assert result["upi_ns"] < result["pcie_ns"]
    assert abs(result["upi_ns"] - 400) < 40
    assert abs(result["pcie_ns"] - 450) < 40


def test_fig4_structure():
    result = fig4_rpc_sizes(samples_per_tier=300)
    assert 0 <= result["social_requests_under_512"] <= 1
    assert result["per_tier_median_request"]["text"] == 580
    assert result["paper"]["requests_under_512"] == 0.75


def test_fig11_bottleneck_small_sweep():
    result = fig11_bottleneck(loads_mrps=[1.0, 7.5], nreq=2000, cache=False)
    assert result["batch_size"] == 1
    assert len(result["points"]) == 2
    for point in result["points"]:
        assert point["utilization"] is not None
        assert len(point["utilization"]) >= 5
    report = result["report"]
    assert report["bottleneck"] != "unknown"
    assert report["knee_load_mrps"] in (1.0, 7.5)


def test_paper_reference_tables_complete():
    # Sanity on the embedded paper anchors the benchmarks compare against.
    assert set(TABLE3_PAPER) == {"ix", "fasst-rdma", "erpc", "netdimm",
                                 "dagger"}
    assert TABLE3_PAPER["dagger"]["mrps"] == 12.4
    assert len(FIG10_PAPER) == 7
    assert {k[0] for k in FIG12_PAPER} == {"memcached", "mica"}
    assert TABLE4_PAPER["optimized"]["max_krps"] == 48.0
