"""Regression tests: closed/open loops issue every requested RPC even when
``nreq`` does not divide the client count, and validate ``nreq``.

Before the fix, ``nreq // len(clients)`` silently dropped the remainder,
and ``nreq < num_threads`` produced target == 0 (an instant, empty run at
best, a hang in loops that waited for completions that never came).
"""

import pytest

from repro.harness.runner import EchoRig


def rig(num_threads=2):
    return EchoRig(stack_name="dagger", interface="upi",
                   num_threads=num_threads)


def test_closed_loop_non_divisible_nreq_completes_everything():
    result = rig(num_threads=2).closed_loop(window=4, nreq=5, warmup_ns=0)
    assert result.count == 5
    assert result.drops == 0


def test_closed_loop_nreq_smaller_than_clients_does_not_hang():
    result = rig(num_threads=2).closed_loop(window=4, nreq=1, warmup_ns=0)
    assert result.count == 1


def test_closed_loop_rejects_zero_nreq():
    with pytest.raises(ValueError, match="nreq"):
        rig().closed_loop(nreq=0)


def test_open_loop_non_divisible_nreq_completes_everything():
    result = rig(num_threads=2).open_loop(0.5, nreq=5, warmup_ns=0)
    assert result.count == 5
    assert result.offered_mrps == 0.5


def test_open_loop_rejects_zero_nreq():
    with pytest.raises(ValueError, match="nreq"):
        rig().open_loop(1.0, nreq=0)


def test_quota_split_covers_exactly_nreq():
    r = rig(num_threads=3)
    assert r._client_quotas(10) == [4, 3, 3]
    assert r._client_quotas(3) == [1, 1, 1]
    assert r._client_quotas(2) == [1, 1, 0]
