"""Unit tests for the report renderers."""

import pytest

from repro.harness.report import compare_row, render_table


def test_render_table_alignment():
    text = render_table(["name", "value"], [("a", 1.5), ("bbbb", 22)],
                        title="T")
    lines = text.splitlines()
    assert lines[0] == "T"
    assert "name" in lines[1] and "value" in lines[1]
    assert set(lines[2]) <= {"-", " "}
    assert "1.50" in text  # floats get two decimals
    assert "bbbb" in text


def test_render_table_ragged_row_rejected():
    with pytest.raises(ValueError):
        render_table(["a", "b"], [("only-one",)])


def test_compare_row_with_paper_value():
    line = compare_row("metric", 2.0, 2.4, unit="us")
    assert "paper=2.00us" in line
    assert "measured=2.40us" in line
    assert "x1.20" in line


def test_compare_row_without_paper_value():
    line = compare_row("metric", None, 3.0)
    assert "paper=N/A" in line
