"""Multi-tenant rig telemetry (ISSUE 4 acceptance criteria).

A real noisy-neighbour run must blame the noisy tenant's
``nic.<tenant>.fetch``-class component by name; steady tenants must stay
isolated; and tenant probes must be zero-cost when disabled (off/on runs
bit-identical).
"""

import json

import pytest

from repro.harness import (
    MultiTenantEchoRig,
    MultiTenantResult,
    run_multi_tenant,
)
from repro.obs import attribute_bottleneck


def _signature(result):
    return {
        tenant: (stats.count, stats.p50_us, stats.p99_us,
                 stats.throughput_mrps)
        for tenant, stats in result.per_tenant.items()
    }


def test_rig_validates_tenants_and_loads():
    with pytest.raises(ValueError, match="at least 2"):
        MultiTenantEchoRig(tenants=("solo",))
    with pytest.raises(ValueError, match="duplicate"):
        MultiTenantEchoRig(tenants=("a", "a"))
    rig = MultiTenantEchoRig(tenants=("a", "b"))
    with pytest.raises(ValueError, match="do not match"):
        rig.open_loop({"a": 1.0}, nreq_total=100)
    with pytest.raises(ValueError, match="positive"):
        rig.open_loop({"a": 1.0, "b": 0.0}, nreq_total=100)


def test_telemetry_off_is_bit_identical_to_on():
    off = run_multi_tenant(noisy_mrps=4.0, nreq_total=1200)
    on = run_multi_tenant(noisy_mrps=4.0, nreq_total=1200, telemetry=True)
    assert _signature(off) == _signature(on)
    assert off.utilization is None and off.tenant_map is None
    assert on.utilization is not None and on.tenant_map is not None


def test_utilization_has_one_nic_namespace_per_tenant():
    result = run_multi_tenant(noisy_mrps=4.0, nreq_total=1200,
                              telemetry=True)
    for tenant in result.tenants:
        assert f"nic.{tenant}.fetch" in result.utilization
        assert result.tenant_map[f"nic.{tenant}.fetch"] == tenant
    # Shared components are present but unowned.
    shared = [k for k in result.utilization if k not in result.tenant_map]
    assert any(k.startswith("interconnect.") for k in shared)
    assert all(0.0 <= v <= 1.0 + 1e-9 for v in result.utilization.values())


def test_noisy_neighbour_blamed_by_name_on_real_run():
    points = []
    for load in (1.0, 7.5):
        result = run_multi_tenant(noisy_mrps=load, nreq_total=1500,
                                  telemetry=True)
        noisy = result.per_tenant["t0"]
        points.append({
            "offered_mrps": load,
            "p99_us": noisy.p99_us,
            "utilization": result.utilization,
            "tenants": result.tenant_map,
        })
    report = attribute_bottleneck(points)
    assert report.bottleneck_tenant == "t0"
    assert report.bottleneck.startswith("nic.t0.")
    # Batch-1 echo is paced by the fetch FSM (section 5.4): the blamed
    # component must be fetch-class, and the steady tenants' counterpart
    # must be far from saturation.
    assert report.bottleneck in ("nic.t0.fetch", "nic.t0.sched")
    knee_util = points[report.knee_index]["utilization"]
    assert knee_util["nic.t1.fetch"] < 0.5 * knee_util["nic.t0.fetch"]


def test_steady_tenants_hold_their_latency():
    quiet = run_multi_tenant(noisy_mrps=1.0, nreq_total=1500)
    noisy = run_multi_tenant(noisy_mrps=7.5, nreq_total=1500)
    for tenant in ("t1", "t2"):
        p99_quiet = quiet.per_tenant[tenant].p99_us
        p99_noisy = noisy.per_tenant[tenant].p99_us
        assert abs(p99_noisy - p99_quiet) / p99_quiet < 0.10


def test_result_round_trips_through_json():
    result = run_multi_tenant(noisy_mrps=2.0, nreq_total=600, telemetry=True)
    decoded = MultiTenantResult.from_dict(
        json.loads(json.dumps(result.to_dict()))
    )
    assert decoded.tenants == result.tenants
    assert decoded.utilization == result.utilization
    assert decoded.tenant_map == result.tenant_map
    assert decoded.offered_mrps == result.offered_mrps
    assert _signature(decoded) == _signature(result)


def test_rig_exports_per_tenant_chrome_trace(tmp_path):
    rig = MultiTenantEchoRig(telemetry=True)
    rig.open_loop({"t0": 4.0, "t1": 0.5, "t2": 0.5}, nreq_total=600)
    path = tmp_path / "tenants.json"
    count = rig.export_chrome_trace(str(path))
    assert count > 0
    document = json.loads(path.read_text())
    processes = {e["args"]["name"]
                 for e in document["traceEvents"]
                 if e["ph"] == "M" and e["name"] == "process_name"}
    assert {"tenant t0", "tenant t1", "tenant t2"} <= processes
