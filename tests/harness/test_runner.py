"""Integration tests for the echo-benchmark harness (scaled down)."""

import pytest

from repro.harness import (
    EchoRig,
    run_closed_loop,
    run_open_loop,
    run_raw_reads,
    run_thread_scaling,
)


def test_closed_loop_reaches_expected_throughput():
    result = run_closed_loop(batch_size=4, nreq=4000)
    assert abs(result.throughput_mrps - 12.4) < 1.0
    assert result.drops == 0
    # ~1.2k of the 4k samples fall inside the warmup window.
    assert result.count > 2500


def test_closed_loop_batch1_bound():
    result = run_closed_loop(batch_size=1, nreq=4000)
    assert abs(result.throughput_mrps - 8.1) < 0.6


def test_open_loop_latency_low_at_low_load():
    result = run_open_loop(load_mrps=1.0, batch_size=1, nreq=3000)
    assert abs(result.p50_us - 1.8) < 0.4
    assert result.p99_us < 3.0
    assert abs(result.throughput_mrps - 1.0) < 0.1
    assert result.offered_mrps == 1.0


def test_open_loop_validates_load():
    with pytest.raises(ValueError):
        run_open_loop(load_mrps=0)


def test_thread_scaling_two_threads():
    result = run_thread_scaling(2, nreq_per_thread=2000)
    assert result.throughput_mrps > 18


def test_raw_reads_single_thread():
    mrps = run_raw_reads(1, nreads_per_thread=4000)
    assert 10 < mrps < 16


def test_rig_with_server_service_time():
    rig = EchoRig(server_service_ns=5000)
    result = rig.closed_loop(window=8, nreq=1500)
    # 5 us handler bounds single-thread throughput near 0.2 Mrps.
    assert result.throughput_mrps < 0.25


def test_rig_over_tor_switch_adds_latency():
    loopback = EchoRig(loopback=True).open_loop(0.5, nreq=1500)
    tor = EchoRig(loopback=False).open_loop(0.5, nreq=1500)
    gap_us = tor.p50_us - loopback.p50_us
    assert 0.4 < gap_us < 0.8  # ~2x 0.3 us TOR minus loopback delay


def test_rig_other_stack():
    result = run_closed_loop(stack_name="erpc", window=32, nreq=3000)
    assert abs(result.throughput_mrps - 4.96) < 0.8
