"""EchoRig timeline telemetry: utilization, determinism, and export.

Acceptance criteria from ISSUE 3: a telemetry-enabled run yields
utilization series for >= 5 distinct probes; enabling telemetry leaves
results bit-identical; the committed BENCH_kernel.json echo signature
still holds; and the exported Chrome trace validates.
"""

import json
import os

import pytest

from repro.harness import BenchResult, EchoRig, run_closed_loop
from repro.obs import attribute_bottleneck

# The committed benchmark JSON is the single source of truth for the
# reference echo signature; a deliberate re-baseline (equal-timestamp
# interleaving change, e.g. the PR-5 zero-yield fast paths) refreshes it
# and this test follows automatically.
_BENCH_JSON = os.path.join(os.path.dirname(__file__), "..", "..",
                           "BENCH_kernel.json")
with open(_BENCH_JSON) as _handle:
    BENCH_SIGNATURE = json.load(_handle)["echo"]["signature"]


def _signature(result):
    return {
        "count": result.count,
        "p50_us": result.p50_us,
        "p99_us": result.p99_us,
        "throughput_mrps": result.throughput_mrps,
    }


def test_telemetry_collects_at_least_five_components():
    result = run_closed_loop(batch_size=4, nreq=2000, telemetry=True)
    assert result.utilization is not None
    components = {key.split(".")[0] for key in result.utilization}
    # nic.client, nic.server, interconnect, cpu, client/server probes...
    assert len(result.utilization) >= 5
    assert {"nic", "cpu"} <= components
    assert all(0.0 <= v <= 1.0 + 1e-9 for v in result.utilization.values())
    assert result.timeline is not None
    assert result.timeline["series"], "expected sampled time series"


def test_telemetry_off_leaves_fields_none():
    result = run_closed_loop(batch_size=4, nreq=2000)
    assert result.utilization is None
    assert result.timeline is None


def test_telemetry_is_bit_identical():
    off = run_closed_loop(batch_size=4, nreq=2000)
    on = run_closed_loop(batch_size=4, nreq=2000, telemetry=True,
                         telemetry_interval_ns=500)
    assert _signature(on) == _signature(off)
    assert on.drops == off.drops == 0


def test_untraced_echo_matches_committed_bench_signature():
    result = run_closed_loop(batch_size=4, nreq=4000)
    assert _signature(result) == BENCH_SIGNATURE


def test_bench_result_round_trips_utilization_and_timeline():
    result = run_closed_loop(batch_size=4, nreq=2000, telemetry=True)
    decoded = BenchResult.from_dict(json.loads(json.dumps(result.to_dict())))
    assert decoded.utilization == result.utilization
    assert decoded.timeline == result.timeline
    # Pre-telemetry dicts (no utilization/timeline keys) still decode.
    legacy = result.to_dict()
    legacy.pop("utilization")
    legacy.pop("timeline")
    old = BenchResult.from_dict(legacy)
    assert old.utilization is None
    assert old.timeline is None


def test_rig_exports_valid_chrome_trace(tmp_path):
    rig = EchoRig(batch_size=4, trace=True, telemetry=True)
    rig.closed_loop(nreq=800, warmup_ns=20_000)
    path = tmp_path / "echo.json"
    count = rig.export_chrome_trace(str(path))
    assert count > 0
    document = json.loads(path.read_text())
    assert set(document) == {"traceEvents", "displayTimeUnit"}
    kinds = {e["ph"] for e in document["traceEvents"]}
    # Metadata, slices, counters, plus the per-RPC causal flow chains.
    assert kinds == {"M", "X", "C", "s", "t", "f"}


def test_attribution_on_real_open_loop_points():
    points = []
    for load in (2.0, 11.0):
        rig = EchoRig(batch_size=4, telemetry=True)
        result = rig.open_loop(load, nreq=1500, warmup_ns=50_000)
        points.append({
            "offered_mrps": load,
            "p99_us": result.p99_us,
            "utilization": result.utilization,
        })
    report = attribute_bottleneck(points)
    assert report.bottleneck != "unknown"
    assert report.bottleneck_utilization == pytest.approx(
        points[report.knee_index]["utilization"][report.bottleneck])
