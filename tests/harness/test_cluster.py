"""Rack-scale cluster harness (repro.harness.cluster)."""

import pytest

from repro.apps.microservices.tier import CallSpec, MethodSpec, TierSpec
from repro.harness.cluster import (
    AutoscalerConfig,
    ClusterRig,
    TierDeployment,
    cluster_signature,
    run_cluster_point,
)
from repro.sim.distributions import Constant
from repro.workloads.sessions import SessionWorkload, make_modulation


def _tiny_tiers(backend_compute_ns=20_000):
    """Two tiers: a light front fanning into a compute-heavy backend."""
    return [
        TierSpec(
            name="backend",
            methods={"handle": MethodSpec(
                compute=Constant(backend_compute_ns), response_bytes=32,
            )},
            num_dispatch_threads=2,
        ),
        TierSpec(
            name="front",
            methods={"handle": MethodSpec(
                compute=Constant(2_000),
                stages=[[CallSpec("backend", payload_bytes=64)]],
                response_bytes=32,
            )},
            num_dispatch_threads=2,
        ),
    ]


def _echo_tiers(compute_ns=20_000):
    return [TierSpec(
        name="echo",
        methods={"handle": MethodSpec(
            compute=Constant(compute_ns), response_bytes=32,
        )},
        num_dispatch_threads=2,
    )]


def _run_echo(policy, load_krps=120.0, nreq=1200, straggler=None,
              seed=21):
    rig = ClusterRig(
        _echo_tiers(),
        machines=2,
        policy=policy,
        deployment=TierDeployment(initial=3, min_replicas=3,
                                  max_replicas=3),
        autoscaler=AutoscalerConfig(enabled=False),
        seed=seed,
    )
    if straggler is not None:
        for core in rig.pools["echo"].replicas[straggler].cores:
            core.slowdown = 8.0
    workload = SessionWorkload(peak_rate_krps=load_krps, seed=seed + 1)
    result = rig.run_sessions(workload, nreq, entry_tier="echo",
                              deadline_us=300.0)
    return rig, result


# -- construction and validation ------------------------------------------


def test_rejects_custom_handler_tiers():
    def handler(ctx, payload):
        yield from ()

    with pytest.raises(ValueError, match="declarative"):
        ClusterRig([TierSpec(name="kv", methods={"get": handler})],
                   machines=1)


def test_rejects_duplicate_and_forward_references():
    with pytest.raises(ValueError, match="duplicate"):
        ClusterRig(_echo_tiers() + _echo_tiers(), machines=1)
    backwards = list(reversed(_tiny_tiers()))
    with pytest.raises(ValueError, match="declared before"):
        ClusterRig(backwards, machines=1)


def test_rejects_unknown_policy_and_bad_bounds():
    with pytest.raises(ValueError, match="policy"):
        ClusterRig(_echo_tiers(), machines=1, policy="random")
    with pytest.raises(ValueError):
        TierDeployment(initial=3, min_replicas=1, max_replicas=2)
    with pytest.raises(ValueError):
        AutoscalerConfig(low_watermark=0.8, high_watermark=0.7)
    with pytest.raises(ValueError):
        AutoscalerConfig(window=4, down_window=2)


def test_out_of_cores_is_informative():
    # 1 machine = 12 cores; 3 replicas x 8 threads need more.
    tiers = [TierSpec(
        name="fat",
        methods={"handle": MethodSpec(compute=Constant(1000))},
        num_dispatch_threads=8,
    )]
    with pytest.raises(ValueError, match="out of cores"):
        ClusterRig(tiers, machines=1,
                   deployment=TierDeployment(initial=1, max_replicas=4))


def test_replicas_spread_across_machines():
    rig = ClusterRig(_echo_tiers(), machines=2,
                     deployment=TierDeployment(initial=3, min_replicas=3,
                                               max_replicas=3))
    machines = [r.machine_id for r in rig.pools["echo"].replicas]
    assert set(machines) == {0, 1}  # round-robin placement
    # The loadgen machine is extra and never hosts replicas.
    assert len(rig.cluster.machines) == 3


def test_rig_is_single_use():
    rig = ClusterRig(_echo_tiers(), machines=1)
    workload = SessionWorkload(peak_rate_krps=20.0, seed=1)
    rig.run_sessions(workload, 50, entry_tier="echo")
    with pytest.raises(RuntimeError, match="already ran"):
        rig.run_sessions(workload, 50, entry_tier="echo")


# -- end-to-end behaviour --------------------------------------------------


def test_tiny_app_completes_and_measures():
    rig = ClusterRig(_tiny_tiers(), machines=2, seed=3)
    workload = SessionWorkload(peak_rate_krps=20.0, seed=4)
    result = rig.run_sessions(workload, 300, entry_tier="front",
                              deadline_us=400.0)
    assert result.completed == 300
    assert result.lost == 0
    assert result.count + result.discarded == 300
    assert result.slo_total == result.count
    assert 0.0 <= result.slo_attainment <= 1.0
    assert result.p50_us > 20.0  # at least the backend compute
    assert result.tiers["backend"]["requests_handled"] == 300


def test_tier_dot_method_mix_keys():
    rig = ClusterRig(_tiny_tiers(), machines=2, seed=5)
    workload = SessionWorkload(
        peak_rate_krps=20.0,
        method_mix={"front.handle": 0.5, "backend.handle": 0.5},
        seed=6,
    )
    result = rig.run_sessions(workload, 300)
    # Every request touches backend exactly once: directly for the
    # backend.handle share, via a nested call for the front.handle share.
    front_handled = result.tiers["front"]["requests_handled"]
    assert 0 < front_handled < 300
    assert result.tiers["backend"]["requests_handled"] == 300


def test_unknown_entry_method_rejected():
    rig = ClusterRig(_tiny_tiers(), machines=2)
    workload = SessionWorkload(peak_rate_krps=20.0,
                               method_mix={"missing": 1.0}, seed=1)
    with pytest.raises(ValueError, match="no method"):
        rig.run_sessions(workload, 10, entry_tier="front")
    rig2 = ClusterRig(_tiny_tiers(), machines=2)
    with pytest.raises(ValueError, match="no tier"):
        rig2.run_sessions(
            SessionWorkload(peak_rate_krps=20.0, seed=1), 10)


def test_serial_runs_bit_identical_in_one_process():
    def run():
        rig = ClusterRig(_tiny_tiers(), machines=2, seed=7)
        workload = SessionWorkload(
            peak_rate_krps=25.0, seed=8,
            modulation=make_modulation("bursty", seed=9),
        )
        return rig.run_sessions(workload, 400, entry_tier="front")

    assert cluster_signature(run()) == cluster_signature(run())


def test_sketch_mode_same_slo_counters_as_exact():
    def run(mode):
        rig = ClusterRig(_tiny_tiers(), machines=2, seed=7)
        workload = SessionWorkload(peak_rate_krps=25.0, seed=8)
        return rig.run_sessions(workload, 400, entry_tier="front",
                                mode=mode)

    exact, sketch = run("exact"), run("sketch")
    # The simulation and the SLO counting are mode-independent; only the
    # percentile estimates may differ (within sketch accuracy).
    assert sketch.slo_met == exact.slo_met
    assert sketch.slo_total == exact.slo_total
    assert sketch.completed == exact.completed
    assert sketch.p99_us == pytest.approx(exact.p99_us, rel=0.05)


# -- load-balancing policies -----------------------------------------------


def test_round_robin_spreads_evenly_when_healthy():
    rig, _ = _run_echo("round-robin", nreq=600)
    issued = rig.pools["echo"].issued
    assert max(issued) - min(issued) <= 1


def test_smart_policies_beat_round_robin_under_straggler():
    # One of three replicas runs on 8x-slowed cores. Round-robin keeps
    # feeding it 1/3 of the traffic; feedback policies must divert.
    shares = {}
    p99 = {}
    for policy in ("round-robin", "least-outstanding", "p2c"):
        rig, result = _run_echo(policy, straggler=2)
        issued = rig.pools["echo"].issued
        shares[policy] = issued[2] / sum(issued)
        p99[policy] = result.p99_us
    assert shares["round-robin"] == pytest.approx(1 / 3, abs=0.02)
    assert shares["least-outstanding"] < shares["round-robin"] / 2
    assert shares["p2c"] < shares["round-robin"]
    assert p99["least-outstanding"] < p99["round-robin"]
    assert p99["p2c"] < p99["round-robin"]


# -- autoscaler ------------------------------------------------------------


def _run_autoscaled(initial, load_krps, nreq=1500, seed=31,
                    autoscaler=None):
    rig = ClusterRig(
        _echo_tiers(),
        machines=2,
        deployment=TierDeployment(initial=initial, min_replicas=1,
                                  max_replicas=3),
        autoscaler=autoscaler or AutoscalerConfig(),
        seed=seed,
    )
    workload = SessionWorkload(peak_rate_krps=load_krps, seed=seed + 1)
    result = rig.run_sessions(workload, nreq, entry_tier="echo")
    return rig, result


def test_autoscaler_grows_overloaded_tier_within_bounds():
    # 80 Krps x 20 us over one 2-thread replica = 0.8 busy > 0.7: must
    # scale up; two replicas sit at 0.4, inside the deadband.
    _, result = _run_autoscaled(initial=1, load_krps=80.0)
    tier = result.tiers["echo"]
    assert tier["scale_ups"] >= 1
    assert tier["final"] == 2
    assert 1 <= tier["peak"] <= tier["max"]
    assert tier["issued_per_replica"][1] > 0  # new replica took traffic
    assert any(e["action"] == "up" for e in result.scaling_events)


def test_autoscaler_no_flapping_on_steady_plateau():
    # 0.4 busy per replica: between the watermarks, so a steady plateau
    # must produce zero actions in either direction (hysteresis).
    _, result = _run_autoscaled(initial=2, load_krps=80.0)
    assert result.scaling_events == []
    assert result.tiers["echo"]["final"] == 2


def test_autoscaler_drains_idle_replicas_slowly():
    # 0.08 busy per replica across 2 replicas: below the low watermark,
    # so the scaler drains back to min - but only after down_window
    # consecutive quiet intervals.
    _, result = _run_autoscaled(initial=2, load_krps=8.0, nreq=1200)
    tier = result.tiers["echo"]
    assert tier["scale_downs"] >= 1
    assert tier["final"] >= tier["min"]
    down = [e for e in result.scaling_events if e["action"] == "down"]
    assert down and down[0]["t_ns"] >= 8 * 1_000_000  # full down_window


def test_autoscaler_disabled_never_scales():
    rig, result = _run_echo("p2c", nreq=400)
    assert result.scaling_events == []
    assert result.tiers["echo"]["scale_ups"] == 0


# -- the full application point -------------------------------------------


def test_social_network_point_deterministic_and_scales():
    kwargs = dict(machines=8, load_krps=60.0, nreq=900,
                  modulation="steady", seed=11)
    a = run_cluster_point(**kwargs)
    b = run_cluster_point(**kwargs)
    assert cluster_signature(a) == cluster_signature(b)
    assert a["completed"] == 900
    assert a["machines"] == 8
    assert a["tiers"]["post_storage"]["peak"] >= 2  # the bottleneck grew
    assert a["slo_attainment"] > 0.8
    # Provisioned occupancy-bound frontends are pinned, never drained.
    assert a["tiers"]["nginx"]["final"] == 2


def test_cluster_point_validation():
    with pytest.raises(ValueError, match="unknown app"):
        run_cluster_point(app="hotel_reservation")
    with pytest.raises(ValueError, match="unknown modulation"):
        run_cluster_point(modulation="square")


def test_flight_cluster_point_runs():
    result = run_cluster_point(app="flight", machines=8, load_krps=5.0,
                               nreq=200, modulation="steady", seed=11)
    assert result["completed"] == 200
    assert result["tiers"]["flight"]["requests_handled"] > 0
    assert result["tiers"]["airport_db"]["requests_handled"] > 0


def test_telemetry_timeline_shows_scaling():
    result = run_cluster_point(machines=8, load_krps=60.0, nreq=900,
                               modulation="steady", seed=11,
                               telemetry=True)
    series = {(s["component"], s["name"]): s
              for s in result["timeline"]["series"]}
    active = series[("cluster.post_storage", "active_replicas")]
    assert active["values"][0] == 1
    assert max(active["values"]) >= 2  # the scale-up is visible
