"""End-to-end test of ``python -m repro trace``."""

import json

from repro.__main__ import main


def test_trace_command_prints_breakdown_and_metrics(capsys, tmp_path):
    jsonl = str(tmp_path / "trace.jsonl")
    rc = main(["trace", "--nreq", "300", "--window", "4",
               "--jsonl", jsonl])
    assert rc == 0
    out = capsys.readouterr().out
    assert "Per-stage latency breakdown" in out
    assert "host->NIC fetch (req)" in out
    assert "stage p50 sum" in out
    assert "Metrics registry" in out
    assert "nic.client" in out

    records = [json.loads(line) for line in open(jsonl)]
    types = {r["type"] for r in records}
    assert types == {"span", "transfer", "metrics"}
    spans = [r for r in records if r["type"] == "span"]
    assert len(spans) == 300
    complete = [s for s in spans
                if "req_issue" in s["events"]
                and "resp_complete" in s["events"]]
    assert len(complete) == 300


def test_trace_command_open_loop(capsys):
    rc = main(["trace", "--nreq", "200", "--open-loop-mrps", "0.5"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "Per-stage latency breakdown" in out
