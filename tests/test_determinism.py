"""Whole-stack determinism: identical seeds produce identical results.

Reproducibility of the reproduction: every experiment is a pure function
of its seed, so paper-vs-measured tables in EXPERIMENTS.md are stable.
"""

from repro.apps.kvs import run_kvs_workload
from repro.apps.microservices.flight import build_flight_app
from repro.harness import run_closed_loop, run_open_loop


def test_closed_loop_deterministic():
    a = run_closed_loop(batch_size=4, nreq=3000)
    b = run_closed_loop(batch_size=4, nreq=3000)
    assert a.throughput_mrps == b.throughput_mrps
    assert a.p50_us == b.p50_us
    assert a.p99_us == b.p99_us


def test_open_loop_deterministic():
    a = run_open_loop(load_mrps=2.0, nreq=2000)
    b = run_open_loop(load_mrps=2.0, nreq=2000)
    assert (a.p50_us, a.p99_us, a.count) == (b.p50_us, b.p99_us, b.count)


def test_kvs_workload_deterministic():
    kwargs = dict(system="mica", nreq=1200, num_keys=50_000,
                  closed_loop_window=8, warmup_ns=20_000)
    a = run_kvs_workload(**kwargs)
    b = run_kvs_workload(**kwargs)
    assert a.throughput_mrps == b.throughput_mrps
    assert a.p99_us == b.p99_us
    assert a.hit_rate == b.hit_rate


def test_flight_app_deterministic():
    a = build_flight_app(optimized=False).run(0.05, nreq=400, warmup_ns=0)
    b = build_flight_app(optimized=False).run(0.05, nreq=400, warmup_ns=0)
    assert (a.p50_us, a.p99_us, a.count) == (b.p50_us, b.p99_us, b.count)


def test_different_configurations_differ():
    a = run_open_loop(load_mrps=2.0, nreq=2000, batch_size=1)
    b = run_open_loop(load_mrps=2.0, nreq=2000, batch_size=4)
    # Identical outputs across different configurations would indicate the
    # configuration (or seeding) is being ignored.
    assert a.p50_us != b.p50_us or a.p99_us != b.p99_us