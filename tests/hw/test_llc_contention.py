"""Tests for the shared-LLC interference model (§5.6)."""

import pytest

from repro.apps.kvs import run_kvs_workload
from repro.hw.cache import LlcContentionDomain
from repro.hw.platform import Machine
from repro.sim import Simulator


def test_domain_multiplier_semantics():
    domain = LlcContentionDomain(slowdown_per_heavy=0.2, max_multiplier=1.5)
    victim, aggressor1, aggressor2 = object(), object(), object()
    assert domain.multiplier_for(victim) == 1.0
    domain.mark_heavy(aggressor1)
    assert domain.multiplier_for(victim) == pytest.approx(1.2)
    # Heavy threads do not slow themselves down.
    assert domain.multiplier_for(aggressor1) == 1.0
    domain.mark_heavy(aggressor2)
    assert domain.multiplier_for(victim) == pytest.approx(1.4)
    assert domain.multiplier_for(aggressor1) == pytest.approx(1.2)
    # Cap.
    for _ in range(10):
        domain.mark_heavy(object())
    assert domain.multiplier_for(victim) == 1.5
    domain.unmark_heavy(aggressor1)
    assert domain.heavy_count == 11


def test_domain_validation():
    with pytest.raises(ValueError):
        LlcContentionDomain(slowdown_per_heavy=-0.1)
    with pytest.raises(ValueError):
        LlcContentionDomain(max_multiplier=0.5)


def test_machine_threads_share_domain():
    machine = Machine(Simulator())
    victim = machine.thread(0)
    aggressor = machine.thread(6)
    aggressor.mark_llc_heavy()
    assert machine.llc_domain.multiplier_for(victim) > 1.0
    assert machine.llc_domain.multiplier_for(aggressor) == 1.0


def test_heavy_thread_slows_victims_in_simulation():
    sim = Simulator()
    machine = Machine(sim)
    cal = machine.calibration.with_overrides(cpu_jitter_mean_ns=0)
    machine.calibration = cal
    for core in machine.cores:
        core.calibration = cal
    victim = machine.thread(0)
    aggressor = machine.thread(6)
    finish = {}

    def run(thread, tag):
        yield from thread.exec(10_000)
        finish[tag] = sim.now

    sim.spawn(run(victim, "baseline"))
    sim.run()
    baseline = finish["baseline"]
    aggressor.mark_llc_heavy()
    sim2 = Simulator()
    machine2 = Machine(sim2)
    victim2 = machine2.thread(0)
    machine2.thread(6).mark_llc_heavy()

    def run2():
        yield from victim2.exec(10_000)
        return sim2.now

    contended = sim2.run_until_done(sim2.spawn(run2()))
    assert contended > baseline


def test_colocated_mica_slower_than_clean():
    clean = run_kvs_workload(system="mica", nreq=1500, num_keys=50_000,
                             closed_loop_window=16, warmup_ns=20_000)
    dirty = run_kvs_workload(system="mica", nreq=1500, num_keys=50_000,
                             closed_loop_window=16, warmup_ns=20_000,
                             model_llc_contention=True)
    # §5.6's instability: the co-located generator costs real throughput.
    assert dirty.throughput_mrps < 0.95 * clean.throughput_mrps
