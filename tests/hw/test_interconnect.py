"""Unit tests for the PCIe/UPI interconnect models."""

import pytest

from repro.hw.calibration import DEFAULT_CALIBRATION
from repro.hw.interconnect import (
    CcipMux,
    PcieDoorbellInterface,
    PcieMmioInterface,
    TransferMode,
    UpiInterface,
    make_interface,
)
from repro.hw.platform import Machine
from repro.sim import Simulator

CAL = DEFAULT_CALIBRATION


def build(kind):
    sim = Simulator()
    machine = Machine(sim, calibration=CAL)
    return sim, make_interface(kind, sim, CAL, machine.fpga)


def run_one(sim, generator):
    start = sim.now

    def proc():
        yield from generator
        return sim.now - start

    return sim.run_until_done(sim.spawn(proc()))


# ---------------------------------------------------------------- factory


def test_make_interface_kinds():
    sim = Simulator()
    machine = Machine(sim)
    assert isinstance(make_interface("upi", sim, CAL, machine.fpga),
                      UpiInterface)
    assert isinstance(make_interface("pcie-mmio", sim, CAL, machine.fpga),
                      PcieMmioInterface)
    assert isinstance(
        make_interface("pcie-doorbell", sim, CAL, machine.fpga),
        PcieDoorbellInterface,
    )


def test_make_interface_unknown():
    sim = Simulator()
    machine = Machine(sim)
    with pytest.raises(ValueError, match="unknown interface"):
        make_interface("infiniband", sim, CAL, machine.fpga)


def test_ccip_mux_tracks_interfaces():
    sim = Simulator()
    machine = Machine(sim)
    mux = CcipMux(sim, CAL, machine.fpga)
    upi = mux.interface("upi")
    pcie = mux.interface("pcie-doorbell")
    assert len(mux.issued) == 2
    assert upi.endpoint is machine.fpga.upi_endpoint
    assert pcie.endpoint is machine.fpga.pcie_endpoint


# -------------------------------------------------------------------- UPI


def test_upi_tx_cpu_cost_is_zero():
    _, upi = build("upi")
    assert upi.tx_cpu_cost_ns(1, 1) == 0
    assert upi.tx_cpu_cost_ns(10, 16) == 0


def test_upi_issue_occupancy():
    _, upi = build("upi")
    assert upi.issue_occupancy_ns(1) == CAL.upi_flow_read_ns
    assert upi.issue_occupancy_ns(4) == (CAL.upi_flow_read_ns
                                         + 3 * CAL.upi_read_line_ns)
    with pytest.raises(ValueError):
        upi.issue_occupancy_ns(0)


def test_upi_host_to_nic_latency():
    sim, upi = build("upi")
    elapsed = run_one(sim, upi.host_to_nic(1))
    assert elapsed == CAL.upi_endpoint_line_ns + CAL.upi_oneway_ns


def test_upi_nic_to_host_latency():
    sim, upi = build("upi")
    elapsed = run_one(sim, upi.nic_to_host(1))
    assert elapsed == CAL.upi_endpoint_line_ns + CAL.upi_nic_to_host_ns


def test_upi_raw_read_near_400ns():
    sim, upi = build("upi")
    elapsed = run_one(sim, upi.raw_read())
    assert abs(elapsed - 400) < 30


def test_upi_mode_is_fetch():
    _, upi = build("upi")
    assert upi.mode is TransferMode.FETCH


def test_upi_accounting():
    sim, upi = build("upi")
    run_one(sim, upi.host_to_nic(4))
    assert upi.lines_transferred == 4
    assert upi.transactions == 1


def test_upi_endpoint_serializes_aggregate_bandwidth():
    sim, upi = build("upi")
    finishes = []

    def reader():
        yield from upi.host_to_nic(1)
        finishes.append(sim.now)

    for _ in range(3):
        sim.spawn(reader())
    sim.run()
    # Endpoint occupancy staggers arrivals by upi_endpoint_line_ns each.
    assert finishes[1] - finishes[0] == CAL.upi_endpoint_line_ns
    assert finishes[2] - finishes[1] == CAL.upi_endpoint_line_ns


# -------------------------------------------------------------------- PCIe


def test_mmio_mode_is_push():
    _, mmio = build("pcie-mmio")
    assert mmio.mode is TransferMode.PUSH
    assert mmio.issue_occupancy_ns(4) == 0


def test_mmio_tx_cpu_cost_scales_with_lines():
    _, mmio = build("pcie-mmio")
    one = mmio.tx_cpu_cost_ns(1, 1)
    two = mmio.tx_cpu_cost_ns(2, 1)
    assert one == 2 * CAL.mmio_store32_ns
    assert two == 2 * one
    # Batching does not help MMIO pushes.
    assert mmio.tx_cpu_cost_ns(1, 8) == one


def test_doorbell_batching_amortizes_mmio():
    _, doorbell = build("pcie-doorbell")
    b1 = doorbell.tx_cpu_cost_ns(1, 1)
    b4 = doorbell.tx_cpu_cost_ns(1, 4)
    b11 = doorbell.tx_cpu_cost_ns(1, 11)
    assert b1 > b4 > b11
    assert b1 == CAL.doorbell_ring_ns + CAL.mmio_doorbell_ns
    assert b1 - CAL.doorbell_ring_ns == CAL.mmio_doorbell_ns


def test_doorbell_rejects_bad_batch():
    _, doorbell = build("pcie-doorbell")
    with pytest.raises(ValueError):
        doorbell.tx_cpu_cost_ns(1, 0)


def test_pcie_fetch_slower_than_upi():
    sim_u, upi = build("upi")
    upi_ns = run_one(sim_u, upi.host_to_nic(1))
    sim_p, doorbell = build("pcie-doorbell")
    pcie_ns = run_one(sim_p, doorbell.host_to_nic(1))
    assert pcie_ns > upi_ns


def test_pcie_raw_read_near_450ns():
    sim, doorbell = build("pcie-doorbell")
    elapsed = run_one(sim, doorbell.raw_read())
    assert abs(elapsed - 450) < 30
