"""Unit tests for the Table 1 FPGA resource estimator."""

import pytest

from repro.hw.nic.config import NicHardConfig
from repro.hw.nic.resources import (
    DEVICE_LUTS,
    DEVICE_M20K,
    estimate_resources,
    max_nic_instances,
)

REFERENCE = NicHardConfig(num_flows=64, connection_cache_entries=65_536)


def test_reference_config_matches_table1():
    footprint = estimate_resources(REFERENCE)
    assert abs(footprint.luts - 87_100) / 87_100 < 0.05
    assert abs(footprint.m20k_blocks - 555) / 555 < 0.05
    assert abs(footprint.registers - 120_800) / 120_800 < 0.05
    assert abs(footprint.lut_utilization - 0.20) < 0.02
    assert abs(footprint.bram_utilization - 0.20) < 0.02


def test_512_flows_fit_under_half_utilization():
    big = NicHardConfig(num_flows=512, connection_cache_entries=65_536)
    assert estimate_resources(big).fits(0.5)


def test_monotone_in_flows():
    small = estimate_resources(NicHardConfig(num_flows=8))
    large = estimate_resources(NicHardConfig(num_flows=128))
    assert large.luts > small.luts
    assert large.m20k_blocks > small.m20k_blocks
    assert large.registers > small.registers


def test_monotone_in_connection_cache():
    small = estimate_resources(NicHardConfig(connection_cache_entries=1024))
    large = estimate_resources(
        NicHardConfig(connection_cache_entries=100_000)
    )
    assert large.luts > small.luts
    assert large.m20k_blocks > small.m20k_blocks


def test_blue_region_excluded_option():
    with_blue = estimate_resources(REFERENCE, include_blue_region=True)
    green_only = estimate_resources(REFERENCE, include_blue_region=False)
    assert green_only.luts < with_blue.luts
    assert green_only.m20k_blocks < with_blue.m20k_blocks


def test_instances_scale_green_region_only():
    one = estimate_resources(NicHardConfig(), instances=1)
    four = estimate_resources(NicHardConfig(), instances=4)
    green = estimate_resources(NicHardConfig(), include_blue_region=False)
    assert four.luts == pytest.approx(one.luts + 3 * green.luts, abs=2)


def test_instances_validation():
    with pytest.raises(ValueError):
        estimate_resources(NicHardConfig(), instances=0)


def test_max_nic_instances_default_config():
    # Section 6: the default NIC is small; many instances co-exist (the
    # paper runs 8 for the Flight app).
    assert max_nic_instances(NicHardConfig()) >= 8


def test_max_nic_instances_reference_config():
    # The big reference config occupies ~20%: only a few fit under 50%.
    count = max_nic_instances(REFERENCE)
    assert 1 <= count <= 8


def test_device_budgets_positive():
    assert DEVICE_LUTS > 0
    assert DEVICE_M20K > 0
