"""Unit tests for the TX-path request table and NIC-level data paths."""

import pytest

from repro.hw.calibration import DEFAULT_CALIBRATION
from repro.hw.interconnect.ccip import make_interface
from repro.hw.nic.config import NicHardConfig, NicSoftConfig
from repro.hw.nic.dagger_nic import DaggerNic
from repro.hw.nic.tx_path import RequestTable
from repro.hw.platform import Machine
from repro.hw.switch import ToRSwitch
from repro.rpc.messages import RpcKind, RpcPacket
from repro.sim import Simulator

CAL = DEFAULT_CALIBRATION


# ----------------------------------------------------------- RequestTable


def test_request_table_acquire_release_cycle():
    table = RequestTable(Simulator(), 2)
    pkt = RpcPacket(RpcKind.REQUEST, 1, "m", b"", 64)
    slot = table.acquire(pkt)
    assert slot is not None
    assert table.occupancy == 1
    assert table.read_and_release(slot) is pkt
    assert table.occupancy == 0


def test_request_table_exhaustion():
    table = RequestTable(Simulator(), 2)
    pkt = RpcPacket(RpcKind.REQUEST, 1, "m", b"", 64)
    slots = [table.acquire(pkt), table.acquire(pkt)]
    assert None not in slots
    assert table.acquire(pkt) is None  # full
    table.read_and_release(slots[0])
    assert table.acquire(pkt) is not None


def test_request_table_bad_size():
    with pytest.raises(ValueError):
        RequestTable(Simulator(), 0)


# ------------------------------------------------------- NIC-level paths


def build_pair(batch=1, auto=False, num_flows=1, flow_fifo_entries=64,
               rx_ring_entries=128):
    sim = Simulator()
    machine = Machine(sim)
    switch = ToRSwitch(sim, CAL, loopback=True)
    nics = []
    for name in ("a", "b"):
        hard = NicHardConfig(num_flows=num_flows,
                             flow_fifo_entries=flow_fifo_entries,
                             rx_ring_entries=rx_ring_entries)
        soft = NicSoftConfig(batch_size=batch, auto_batch=auto)
        interface = make_interface("upi", sim, CAL, machine.fpga)
        nics.append(DaggerNic(sim, CAL, interface, switch, name,
                              hard=hard, soft=soft))
    return sim, nics[0], nics[1]


def send(sim, nic, packet, flow=0):
    def proc():
        yield from nic.send_from_host(flow, packet)

    sim.spawn(proc())


def test_request_travels_a_to_b():
    sim, a, b = build_pair()
    a.open_connection(1, 0, "b")
    b.open_connection(1, 0, "a")
    packet = RpcPacket(RpcKind.REQUEST, 1, "echo", b"hi", 48)
    send(sim, a, packet)
    sim.run()
    assert len(b.rx_ring(0)) == 1
    delivered = b.rx_ring(0).try_get()
    assert delivered is packet
    assert delivered.src_address == "a"
    assert delivered.dst_address == "b"
    assert a.monitor.tx_rpcs == 1
    assert b.monitor.rx_rpcs == 1
    assert b.monitor.delivered_rpcs == 1


def test_packet_timestamps_in_order():
    sim, a, b = build_pair()
    a.open_connection(1, 0, "b")
    b.open_connection(1, 0, "a")
    packet = RpcPacket(RpcKind.REQUEST, 1, "echo", b"", 64)
    send(sim, a, packet)
    sim.run()
    stamps = packet.timestamps
    assert (stamps["sw_tx"] <= stamps["nic_fetched"] <= stamps["wire_tx"]
            <= stamps["nic_rx"] <= stamps["host_delivered"])


def test_response_steered_to_request_flow():
    sim, a, b = build_pair(num_flows=2)
    a.open_connection(1, 1, "b")
    b.open_connection(1, 0, "a")
    request = RpcPacket(RpcKind.REQUEST, 1, "echo", b"", 64)
    send(sim, a, request, flow=1)
    sim.run()
    arrived = b.rx_ring(0).try_get() or b.rx_ring(1).try_get()
    response = arrived.make_response(b"", 48)
    send(sim, b, response)
    sim.run()
    # The response lands on flow 1, where the request originated.
    assert len(a.rx_ring(1)) == 1
    assert len(a.rx_ring(0)) == 0


def test_fixed_batch_waits_then_times_out():
    sim, a, b = build_pair(batch=4)
    a.soft.batch_timeout_ns = 2000
    a.open_connection(1, 0, "b")
    b.open_connection(1, 0, "a")
    packet = RpcPacket(RpcKind.REQUEST, 1, "echo", b"", 64)
    send(sim, a, packet)
    sim.run()
    # Sent alone after the batch timeout, not stuck forever.
    assert b.monitor.delivered_rpcs == 1
    assert packet.timestamps["nic_fetched"] >= 2000


def test_auto_batch_takes_whats_available():
    sim, a, b = build_pair(batch=4, auto=True)
    a.open_connection(1, 0, "b")
    b.open_connection(1, 0, "a")
    for _ in range(3):
        send(sim, a, RpcPacket(RpcKind.REQUEST, 1, "echo", b"", 64))
    sim.run()
    assert b.monitor.delivered_rpcs == 3
    # No batch waited for a fourth member.
    assert a.monitor.batches >= 1


def test_rx_ring_overflow_drops():
    sim, a, b = build_pair(rx_ring_entries=2)
    a.open_connection(1, 0, "b")
    b.open_connection(1, 0, "a")
    for _ in range(8):
        send(sim, a, RpcPacket(RpcKind.REQUEST, 1, "echo", b"", 64))
    sim.run()  # nobody drains b's rx ring
    assert b.monitor.dropped_rx_ring == 6
    assert b.monitor.delivered_rpcs == 2
    assert b.monitor.drop_rate > 0


def test_multi_line_rpc_consumes_more_lines():
    sim, a, b = build_pair()
    a.open_connection(1, 0, "b")
    b.open_connection(1, 0, "a")
    big = RpcPacket(RpcKind.REQUEST, 1, "echo", b"", 600)  # ~10 lines
    send(sim, a, big)
    sim.run()
    assert a.interface.lines_transferred >= 10


def test_send_to_invalid_flow_rejected():
    sim, a, _ = build_pair()

    def proc():
        yield from a.send_from_host(5, RpcPacket(RpcKind.REQUEST, 1, "m",
                                                 b"", 64))

    with pytest.raises(ValueError):
        sim.run_until_done(sim.spawn(proc()))


def test_mmio_push_mode_skips_fetch_fsm():
    sim = Simulator()
    machine = Machine(sim)
    switch = ToRSwitch(sim, CAL, loopback=True)
    hard = NicHardConfig(num_flows=1, interface="pcie-mmio")
    a = DaggerNic(sim, CAL, make_interface("pcie-mmio", sim, CAL,
                                           machine.fpga),
                  switch, "a", hard=hard)
    b = DaggerNic(sim, CAL, make_interface("pcie-mmio", sim, CAL,
                                           machine.fpga),
                  switch, "b", hard=hard)
    a.open_connection(1, 0, "b")
    b.open_connection(1, 0, "a")
    packet = RpcPacket(RpcKind.REQUEST, 1, "echo", b"", 64)
    send(sim, a, packet)
    sim.run()
    assert b.monitor.delivered_rpcs == 1
    # Push mode: the TX ring was never used.
    assert a.flow_rings[0].tx_occupancy == 0
