"""Unit tests for the packet monitor counters."""

from repro.hw.nic.packet_monitor import PacketMonitor


def test_initial_state():
    monitor = PacketMonitor()
    assert monitor.drops == 0
    assert monitor.drop_rate == 0.0
    assert monitor.mean_batch == 0.0


def test_drop_accounting():
    monitor = PacketMonitor()
    monitor.rx_rpcs = 10
    monitor.dropped_rx_ring = 2
    monitor.dropped_flow_fifo = 1
    assert monitor.drops == 3
    assert monitor.drop_rate == 0.3


def test_mean_batch():
    monitor = PacketMonitor()
    monitor.batches = 4
    monitor.batched_rpcs = 10
    assert monitor.mean_batch == 2.5


def test_snapshot_round():
    monitor = PacketMonitor()
    monitor.tx_rpcs = 5
    monitor.rx_rpcs = 4
    snap = monitor.snapshot()
    assert snap["tx_rpcs"] == 5
    assert snap["rx_rpcs"] == 4
    assert set(snap) == {"tx_rpcs", "rx_rpcs", "fetched_rpcs",
                         "delivered_rpcs", "drops", "drop_rate",
                         "mean_batch"}
