"""Unit tests for NIC hard/soft configuration."""

import pytest

from repro.hw.nic.config import (
    MAX_CONNECTION_CACHE_ENTRIES,
    MAX_FLOWS,
    NicHardConfig,
    NicSoftConfig,
)


def test_defaults_valid():
    hard = NicHardConfig()
    soft = NicSoftConfig()
    soft.validate(hard)


def test_flow_bounds():
    NicHardConfig(num_flows=1)
    NicHardConfig(num_flows=MAX_FLOWS)
    with pytest.raises(ValueError):
        NicHardConfig(num_flows=0)
    with pytest.raises(ValueError):
        NicHardConfig(num_flows=MAX_FLOWS + 1)


def test_connection_cache_bounds():
    NicHardConfig(connection_cache_entries=MAX_CONNECTION_CACHE_ENTRIES)
    with pytest.raises(ValueError):
        NicHardConfig(connection_cache_entries=0)
    with pytest.raises(ValueError):
        NicHardConfig(
            connection_cache_entries=MAX_CONNECTION_CACHE_ENTRIES + 1
        )


def test_ring_depth_validation():
    with pytest.raises(ValueError):
        NicHardConfig(tx_ring_entries=0)
    with pytest.raises(ValueError):
        NicHardConfig(rx_ring_entries=0)
    with pytest.raises(ValueError):
        NicHardConfig(flow_fifo_entries=0)
    with pytest.raises(ValueError):
        NicHardConfig(max_batch=0)


def test_interface_validation():
    for kind in ("upi", "pcie-doorbell", "pcie-mmio"):
        NicHardConfig(interface=kind)
    with pytest.raises(ValueError):
        NicHardConfig(interface="rdma")


def test_soft_batch_bounds():
    hard = NicHardConfig(max_batch=8)
    NicSoftConfig(batch_size=8).validate(hard)
    with pytest.raises(ValueError):
        NicSoftConfig(batch_size=9).validate(hard)
    with pytest.raises(ValueError):
        NicSoftConfig(batch_size=0).validate(hard)


def test_soft_batch_timeout_validation():
    hard = NicHardConfig()
    with pytest.raises(ValueError):
        NicSoftConfig(batch_timeout_ns=-1).validate(hard)


def test_soft_balancer_validation():
    hard = NicHardConfig()
    for scheme in ("round-robin", "static", "object-level"):
        NicSoftConfig(load_balancer=scheme).validate(hard)
    with pytest.raises(ValueError):
        NicSoftConfig(load_balancer="magic").validate(hard)


def test_active_flows():
    hard = NicHardConfig(num_flows=4)
    soft = NicSoftConfig(active_flows=2)
    soft.validate(hard)
    assert soft.effective_flows(hard) == 2
    assert NicSoftConfig(active_flows=0).effective_flows(hard) == 4
    with pytest.raises(ValueError):
        NicSoftConfig(active_flows=5).validate(hard)


def test_soft_config_is_mutable_at_runtime():
    # Soft reconfiguration: the auto-batcher flips these on a live NIC.
    soft = NicSoftConfig(batch_size=1)
    soft.batch_size = 4
    soft.auto_batch = True
    soft.validate(NicHardConfig())


def test_soft_reconfigure_live_nic():
    from repro.hw.interconnect.ccip import make_interface
    from repro.hw.nic.dagger_nic import DaggerNic
    from repro.hw.platform import Machine
    from repro.hw.switch import ToRSwitch
    from repro.sim import Simulator

    sim = Simulator()
    machine = Machine(sim)
    switch = ToRSwitch(sim, machine.calibration)
    nic = DaggerNic(sim, machine.calibration,
                    make_interface("upi", sim, machine.calibration,
                                   machine.fpga),
                    switch, "nic", hard=NicHardConfig(num_flows=4))
    thread = machine.thread(0)

    def reconfigure():
        start = sim.now
        yield from nic.soft_reconfigure(
            thread, batch_size=4, auto_batch=True,
            load_balancer="object-level", active_flows=2,
        )
        return sim.now - start

    elapsed = sim.run_until_done(sim.spawn(reconfigure()))
    assert nic.soft.batch_size == 4
    assert nic.soft.auto_batch
    assert nic.soft.effective_flows(nic.hard) == 2
    assert nic.balancer.name == "object-level"
    # Four register writes -> four MMIOs of cost.
    assert elapsed >= 4 * machine.calibration.mmio_doorbell_ns


def test_soft_reconfigure_validates():
    from repro.hw.interconnect.ccip import make_interface
    from repro.hw.nic.dagger_nic import DaggerNic
    from repro.hw.platform import Machine
    from repro.hw.switch import ToRSwitch
    from repro.sim import Simulator

    sim = Simulator()
    machine = Machine(sim)
    switch = ToRSwitch(sim, machine.calibration)
    nic = DaggerNic(sim, machine.calibration,
                    make_interface("upi", sim, machine.calibration,
                                   machine.fpga),
                    switch, "nic", hard=NicHardConfig(num_flows=2))
    thread = machine.thread(0)

    def bad_batch():
        yield from nic.soft_reconfigure(thread, batch_size=999)

    with pytest.raises(ValueError):
        sim.run_until_done(sim.spawn(bad_batch()))
    assert nic.soft.batch_size == 1  # unchanged on failure

    def bad_register():
        yield from nic.soft_reconfigure(thread, voltage=3)

    with pytest.raises(ValueError, match="unknown soft registers"):
        sim.run_until_done(sim.spawn(bad_register()))

    def empty():
        yield from nic.soft_reconfigure(thread)

    with pytest.raises(ValueError, match="at least one change"):
        sim.run_until_done(sim.spawn(empty()))
