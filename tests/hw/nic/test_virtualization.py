"""Unit tests for multi-NIC virtualization on one FPGA (Fig 14)."""

import pytest

from repro.hw.nic.config import NicHardConfig
from repro.hw.nic.virtualization import VirtualizedFpga
from repro.hw.platform import Machine
from repro.hw.switch import ToRSwitch
from repro.rpc.messages import RpcKind, RpcPacket
from repro.sim import Simulator


def make_vfpga():
    sim = Simulator()
    machine = Machine(sim)
    switch = ToRSwitch(sim, machine.calibration, loopback=True)
    return sim, machine, VirtualizedFpga(machine, switch)


def test_instantiates_eight_nics():
    _, machine, vfpga = make_vfpga()
    for i in range(8):
        vfpga.add_nic(f"tier{i}", hard=NicHardConfig(num_flows=2))
    assert len(vfpga) == 8
    assert len(machine.fpga.nics) == 8


def test_duplicate_address_rejected():
    _, _, vfpga = make_vfpga()
    vfpga.add_nic("a")
    with pytest.raises(ValueError):
        vfpga.add_nic("a")


def test_capacity_limit_enforced():
    _, _, vfpga = make_vfpga()
    huge = NicHardConfig(num_flows=512, connection_cache_entries=65_536)
    vfpga.add_nic("big0", hard=huge)
    with pytest.raises(ValueError, match="utilization"):
        for i in range(8):
            vfpga.add_nic(f"big{i + 1}", hard=huge)


def test_instances_share_endpoints():
    _, machine, vfpga = make_vfpga()
    a = vfpga.add_nic("a")
    b = vfpga.add_nic("b")
    assert a.interface.endpoint is b.interface.endpoint
    assert a.interface.endpoint is machine.fpga.upi_endpoint


def test_cross_nic_traffic_through_switch():
    sim, _, vfpga = make_vfpga()
    a = vfpga.add_nic("a", hard=NicHardConfig(num_flows=1))
    b = vfpga.add_nic("b", hard=NicHardConfig(num_flows=1))
    a.open_connection(1, 0, "b")
    b.open_connection(1, 0, "a")

    def proc():
        yield from a.send_from_host(
            0, RpcPacket(RpcKind.REQUEST, 1, "m", b"", 64)
        )

    sim.spawn(proc())
    sim.run()
    assert b.monitor.delivered_rpcs == 1
    assert vfpga.mux.total_lines >= 2  # fetch at a + delivery at b
