"""Unit tests for multi-NIC virtualization on one FPGA (Fig 14)."""

import pytest

from repro.hw.nic.config import NicHardConfig
from repro.hw.nic.virtualization import VirtualizedFpga
from repro.hw.platform import Machine
from repro.hw.switch import ToRSwitch
from repro.rpc.messages import RpcKind, RpcPacket
from repro.sim import Simulator


def make_vfpga():
    sim = Simulator()
    machine = Machine(sim)
    switch = ToRSwitch(sim, machine.calibration, loopback=True)
    return sim, machine, VirtualizedFpga(machine, switch)


def test_instantiates_eight_nics():
    _, machine, vfpga = make_vfpga()
    for i in range(8):
        vfpga.add_nic(f"tier{i}", hard=NicHardConfig(num_flows=2))
    assert len(vfpga) == 8
    assert len(machine.fpga.nics) == 8


def test_duplicate_address_rejected():
    _, _, vfpga = make_vfpga()
    vfpga.add_nic("a")
    with pytest.raises(ValueError):
        vfpga.add_nic("a")


def test_capacity_limit_enforced():
    _, _, vfpga = make_vfpga()
    huge = NicHardConfig(num_flows=512, connection_cache_entries=65_536)
    vfpga.add_nic("big0", hard=huge)
    with pytest.raises(ValueError, match="utilization"):
        for i in range(8):
            vfpga.add_nic(f"big{i + 1}", hard=huge)


def test_instances_share_endpoints():
    _, machine, vfpga = make_vfpga()
    a = vfpga.add_nic("a")
    b = vfpga.add_nic("b")
    assert a.interface.endpoint is b.interface.endpoint
    assert a.interface.endpoint is machine.fpga.upi_endpoint


def test_tenant_defaults_to_address_and_can_group():
    _, _, vfpga = make_vfpga()
    vfpga.add_nic("a")
    vfpga.add_nic("t0-c", tenant="t0")
    vfpga.add_nic("t0-s", tenant="t0")
    assert vfpga.tenant_names() == ["a", "t0"]
    assert [n.address for n in vfpga.tenant_nics("t0")] == ["t0-c", "t0-s"]
    assert [n.address for n in vfpga.tenant_nics("a")] == ["a"]


def test_timeline_probes_yield_one_namespace_per_tenant():
    _, _, vfpga = make_vfpga()
    vfpga.add_nic("t0-c", tenant="t0")
    vfpga.add_nic("t0-s", tenant="t0")
    vfpga.add_nic("t1-c", tenant="t1")
    probes = vfpga.timeline_probes()
    assert all(len(entry) == 4 for entry in probes)
    by_tenant = {}
    for tenant, name, mode, fn in probes:
        by_tenant.setdefault(tenant, []).append(name)
        assert mode in ("gauge", "counter")
        assert fn() == 0  # idle rig: every probe reads zero
    assert set(by_tenant) == {"t0", "t1"}
    for names in by_tenant.values():
        assert {"fetch_busy_ns", "sched_busy_ns", "pipeline_busy_ns",
                "eth_busy_ns"} <= set(names)


def test_probes_attribute_traffic_to_the_right_tenant():
    sim, _, vfpga = make_vfpga()
    a = vfpga.add_nic("a", hard=NicHardConfig(num_flows=1), tenant="busy")
    b = vfpga.add_nic("b", hard=NicHardConfig(num_flows=1), tenant="idle")
    vfpga.enable_usage()
    probes = {(tenant, name): fn
              for tenant, name, _, fn in vfpga.timeline_probes()}
    a.open_connection(1, 0, "b")
    b.open_connection(1, 0, "a")

    def proc():
        yield from a.send_from_host(
            0, RpcPacket(RpcKind.REQUEST, 1, "m", b"", 64)
        )

    sim.spawn(proc())
    sim.run()
    assert probes[("busy", "fetch_busy_ns")]() > 0
    assert probes[("busy", "tx_rpcs")]() == 1
    # The idle tenant's fetch FSM never ran: its integral must stay zero.
    assert probes[("idle", "fetch_busy_ns")]() == 0
    assert probes[("idle", "tx_rpcs")]() == 0
    assert probes[("idle", "delivered_rpcs")]() == 1  # it received, only


def test_cross_nic_traffic_through_switch():
    sim, _, vfpga = make_vfpga()
    a = vfpga.add_nic("a", hard=NicHardConfig(num_flows=1))
    b = vfpga.add_nic("b", hard=NicHardConfig(num_flows=1))
    a.open_connection(1, 0, "b")
    b.open_connection(1, 0, "a")

    def proc():
        yield from a.send_from_host(
            0, RpcPacket(RpcKind.REQUEST, 1, "m", b"", 64)
        )

    sim.spawn(proc())
    sim.run()
    assert b.monitor.delivered_rpcs == 1
    assert vfpga.mux.total_lines >= 2  # fetch at a + delivery at b
