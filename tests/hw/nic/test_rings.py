"""Unit tests for the software RX/TX ring pairs."""

from repro.hw.nic.rings import FlowRings
from repro.sim import Simulator


def test_ring_directions():
    sim = Simulator()
    rings = FlowRings(sim, flow_id=3, tx_entries=4, rx_entries=2)
    assert rings.flow_id == 3
    # TX ring blocks when full (flow blocking)...
    assert rings.tx_ring.reject_when_full is False
    assert rings.tx_ring.capacity == 4
    # ...RX ring drops when full (the NIC cannot wait for software).
    assert rings.rx_ring.reject_when_full is True
    assert rings.rx_ring.capacity == 2


def test_occupancy_accessors():
    sim = Simulator()
    rings = FlowRings(sim, 0, tx_entries=4, rx_entries=4)
    assert rings.tx_occupancy == 0
    rings.tx_ring.try_put("a")
    rings.rx_ring.try_put("b")
    assert rings.tx_occupancy == 1
    assert rings.rx_occupancy == 1


def test_rx_overflow_counts_drops():
    sim = Simulator()
    rings = FlowRings(sim, 0, tx_entries=4, rx_entries=1)
    assert rings.rx_ring.try_put("a")
    assert not rings.rx_ring.try_put("b")
    assert rings.rx_ring.drops == 1
