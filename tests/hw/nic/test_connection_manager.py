"""Unit tests for the connection manager (1W3R connection cache)."""

import pytest

from repro.hw.calibration import DEFAULT_CALIBRATION
from repro.hw.nic.connection_manager import ConnectionManager, ConnectionTuple
from repro.rpc.errors import ConnectionError_
from repro.sim import Simulator

CAL = DEFAULT_CALIBRATION


def make_cm(entries=4, dram_backed=True):
    sim = Simulator()
    return sim, ConnectionManager(sim, CAL, entries, dram_backed=dram_backed)


def lookup(sim, cm, cid):
    start = sim.now

    def proc():
        entry = yield from cm.lookup(cid)
        return entry, sim.now - start

    return sim.run_until_done(sim.spawn(proc()))


def test_tuple_validation():
    ConnectionTuple(1, 0, "server")
    with pytest.raises(ValueError):
        ConnectionTuple(-1, 0, "server")
    with pytest.raises(ValueError):
        ConnectionTuple(1, -1, "server")
    with pytest.raises(ValueError):
        ConnectionTuple(1, 0, "")


def test_open_and_lookup_hit():
    sim, cm = make_cm()
    cm.open_connection(ConnectionTuple(1, 0, "server"))
    entry, elapsed = lookup(sim, cm, 1)
    assert entry.dest_address == "server"
    assert elapsed == CAL.nic_connection_lookup_cycles * CAL.nic_cycle_ns


def test_double_open_rejected():
    _, cm = make_cm()
    cm.open_connection(ConnectionTuple(1, 0, "server"))
    with pytest.raises(ConnectionError_):
        cm.open_connection(ConnectionTuple(1, 1, "other"))


def test_lookup_unknown_connection():
    sim, cm = make_cm()

    def proc():
        yield from cm.lookup(42)

    with pytest.raises(ConnectionError_):
        sim.run_until_done(sim.spawn(proc()))


def test_close_connection():
    sim, cm = make_cm()
    cm.open_connection(ConnectionTuple(1, 0, "server"))
    cm.close_connection(1)
    assert cm.open_count == 0
    with pytest.raises(ConnectionError_):
        cm.close_connection(1)


def test_evicted_connection_served_from_dram_with_penalty():
    sim, cm = make_cm(entries=1)  # all ids conflict
    cm.open_connection(ConnectionTuple(1, 0, "a"))
    cm.open_connection(ConnectionTuple(2, 0, "b"))  # evicts 1
    entry, elapsed = lookup(sim, cm, 1)
    assert entry.dest_address == "a"
    assert elapsed >= CAL.nic_connection_miss_ns
    # The miss refilled the cache; the victim now misses instead.
    _, elapsed_hit = lookup(sim, cm, 1)
    assert elapsed_hit < CAL.nic_connection_miss_ns


def test_without_dram_backing_eviction_is_fatal():
    sim, cm = make_cm(entries=1, dram_backed=False)
    cm.open_connection(ConnectionTuple(1, 0, "a"))
    cm.open_connection(ConnectionTuple(2, 0, "b"))

    def proc():
        yield from cm.lookup(1)

    with pytest.raises(ConnectionError_, match="evicted"):
        sim.run_until_done(sim.spawn(proc()))


def test_open_count():
    _, cm = make_cm(entries=64)
    for cid in range(10):
        cm.open_connection(ConnectionTuple(cid, 0, "x"))
    assert cm.open_count == 10
