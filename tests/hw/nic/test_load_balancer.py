"""Unit tests for the request load balancers."""

import pytest

from repro.hw.nic.load_balancer import (
    ObjectLevelBalancer,
    RoundRobinBalancer,
    StaticBalancer,
    make_balancer,
)
from repro.rpc.messages import RpcKind, RpcPacket


def packet(connection_id=1, lb_key=None):
    return RpcPacket(RpcKind.REQUEST, connection_id, "m", b"", 64,
                     lb_key=lb_key)


def test_round_robin_cycles():
    balancer = RoundRobinBalancer()
    picks = [balancer.pick_flow(packet(), 3) for _ in range(6)]
    assert picks == [0, 1, 2, 0, 1, 2]


def test_round_robin_handles_shrinking_flow_count():
    balancer = RoundRobinBalancer()
    balancer.pick_flow(packet(), 4)
    balancer.pick_flow(packet(), 4)
    assert balancer.pick_flow(packet(), 2) in (0, 1)


def test_static_uses_preferred_flow():
    balancer = StaticBalancer()
    assert balancer.pick_flow(packet(), 4, preferred_flow=2) == 2


def test_static_fallback_to_connection_id():
    balancer = StaticBalancer()
    assert balancer.pick_flow(packet(connection_id=7), 4) == 3


def test_static_rejects_out_of_range_preference():
    balancer = StaticBalancer()
    with pytest.raises(ValueError):
        balancer.pick_flow(packet(), 2, preferred_flow=5)


def test_object_level_is_deterministic_per_key():
    balancer = ObjectLevelBalancer()
    a = balancer.pick_flow(packet(lb_key=12345), 4)
    b = balancer.pick_flow(packet(lb_key=12345), 4)
    assert a == b == 12345 % 4


def test_object_level_spreads_keys():
    balancer = ObjectLevelBalancer()
    flows = {balancer.pick_flow(packet(lb_key=k), 4) for k in range(100)}
    assert flows == {0, 1, 2, 3}


def test_object_level_without_key_falls_back():
    balancer = ObjectLevelBalancer()
    assert balancer.pick_flow(packet(connection_id=9), 4) == 1


def test_make_balancer():
    assert isinstance(make_balancer("round-robin"), RoundRobinBalancer)
    assert isinstance(make_balancer("static"), StaticBalancer)
    assert isinstance(make_balancer("object-level"), ObjectLevelBalancer)
    with pytest.raises(ValueError):
        make_balancer("bogus")
