"""Tests for the future-work hardware extensions' resource/cost effects."""

from repro.hw.nic.config import NicHardConfig
from repro.hw.nic.resources import estimate_resources
from repro.hw.platform import Machine
from repro.hw.switch import ToRSwitch
from repro.rpc.messages import RpcKind, RpcPacket
from repro.sim import Simulator
from repro.stacks import DaggerStack


def test_hw_reassembly_removes_cpu_cost():
    sim = Simulator()
    machine = Machine(sim)
    switch = ToRSwitch(sim, machine.calibration)
    sw = DaggerStack(machine, switch, "sw",
                     hard=NicHardConfig(num_flows=1))
    hw = DaggerStack(machine, switch, "hw",
                     hard=NicHardConfig(num_flows=1, hw_reassembly=True))
    big = RpcPacket(RpcKind.REQUEST, 1, "m", b"", 600)
    assert hw.port(0).cpu_tx_ns(big) < sw.port(0).cpu_tx_ns(big)
    assert hw.port(0).cpu_rx_ns(big) < sw.port(0).cpu_rx_ns(big)
    small = RpcPacket(RpcKind.REQUEST, 1, "m", b"", 48)
    assert hw.port(0).cpu_tx_ns(small) == sw.port(0).cpu_tx_ns(small)


def test_hw_reassembly_costs_fpga_area():
    base = estimate_resources(NicHardConfig())
    cam = estimate_resources(NicHardConfig(hw_reassembly=True))
    # CAMs are expensive (the paper's reason for leaving this to future
    # work): a visible LUT/register hit.
    assert cam.luts > base.luts + 10_000
    assert cam.registers > base.registers
    assert cam.m20k_blocks > base.m20k_blocks


def test_reliable_transport_costs_fpga_area():
    base = estimate_resources(NicHardConfig())
    reliable = estimate_resources(NicHardConfig(reliable_transport=True))
    assert reliable.luts > base.luts
    assert reliable.m20k_blocks > base.m20k_blocks


def test_extensions_stack():
    both = estimate_resources(
        NicHardConfig(hw_reassembly=True, reliable_transport=True)
    )
    cam_only = estimate_resources(NicHardConfig(hw_reassembly=True))
    assert both.luts > cam_only.luts


def test_inline_crypto_adds_latency_not_throughput_loss():
    from repro.harness import EchoRig

    plain = EchoRig(batch_size=4, auto_batch=True)
    crypto = EchoRig(batch_size=4, auto_batch=True,
                     hard_overrides={"inline_crypto": True})
    plain_result = plain.open_loop(2.0, nreq=2500)
    crypto_result = crypto.open_loop(2.0, nreq=2500)
    # Four pipeline cycles per line each way, both directions: ~80-160 ns
    # extra RTT for single-line RPCs.
    gap_us = crypto_result.p50_us - plain_result.p50_us
    assert 0.04 < gap_us < 0.30
    # Pipelined crypto does not cost throughput for small RPCs.
    plain_thr = EchoRig(batch_size=4, auto_batch=True).closed_loop(
        window=64, nreq=4000).throughput_mrps
    crypto_thr = EchoRig(batch_size=4, auto_batch=True,
                         hard_overrides={"inline_crypto": True}).closed_loop(
        window=64, nreq=4000).throughput_mrps
    assert abs(crypto_thr - plain_thr) < 0.8


def test_inline_crypto_costs_fpga_area():
    base = estimate_resources(NicHardConfig())
    crypto = estimate_resources(NicHardConfig(inline_crypto=True))
    assert crypto.luts > base.luts + 10_000
    assert crypto.registers > base.registers
