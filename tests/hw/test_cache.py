"""Unit tests for the direct-mapped cache and the HCC."""

import pytest

from repro.hw.cache import DirectMappedCache, HostCoherentCache


def test_miss_then_hit():
    cache = DirectMappedCache(16)
    hit, value = cache.lookup("a")
    assert not hit and value is None
    cache.insert("a", 1)
    hit, value = cache.lookup("a")
    assert hit and value == 1
    assert cache.hits == 1
    assert cache.misses == 1


def test_conflict_eviction():
    cache = DirectMappedCache(1)  # every key maps to slot 0
    cache.insert("a", 1)
    cache.insert("b", 2)
    assert cache.evictions == 1
    hit, _ = cache.lookup("a")
    assert not hit
    hit, value = cache.lookup("b")
    assert hit and value == 2


def test_update_same_key_is_not_eviction():
    cache = DirectMappedCache(4)
    cache.insert("a", 1)
    cache.insert("a", 2)
    assert cache.evictions == 0
    assert cache.lookup("a") == (True, 2)


def test_invalidate():
    cache = DirectMappedCache(8)
    cache.insert("a", 1)
    assert cache.invalidate("a")
    assert not cache.invalidate("a")
    hit, _ = cache.lookup("a")
    assert not hit


def test_invalidate_wrong_key_in_slot():
    cache = DirectMappedCache(1)
    cache.insert("a", 1)
    cache.insert("b", 2)  # evicts a
    assert not cache.invalidate("a")
    assert cache.lookup("b") == (True, 2)


def test_occupancy_and_hit_rate():
    cache = DirectMappedCache(64)
    assert cache.hit_rate == 0.0
    for i in range(10):
        cache.insert(i, i)
    assert cache.occupancy <= 10
    for i in range(10):
        cache.lookup(i)
    assert 0.0 < cache.hit_rate <= 1.0


def test_zero_entries_rejected():
    with pytest.raises(ValueError):
        DirectMappedCache(0)


def test_hcc_dimensions():
    hcc = HostCoherentCache()
    assert hcc.size_bytes == 128 * 1024  # §4.1: 128 KB
    assert hcc.line_bytes == 64
    assert hcc.num_entries == 2048


def test_hcc_rejects_unaligned_size():
    with pytest.raises(ValueError):
        HostCoherentCache(size_bytes=1000, line_bytes=64)
