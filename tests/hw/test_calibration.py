"""Unit tests for the calibration constants and helpers."""

import pytest

from repro.hw.calibration import APP_SERVICE_TIMES_NS, Calibration, DEFAULT_CALIBRATION


def test_default_anchor_single_core_budget():
    # cpu_tx + cpu_rx ~ 80 ns -> ~12.4 Mrps per core (Fig 10 anchor).
    cal = DEFAULT_CALIBRATION
    per_rpc = cal.cpu_tx_ns + cal.cpu_rx_ns
    assert 60 <= per_rpc <= 90


def test_doorbell_anchor():
    cal = DEFAULT_CALIBRATION
    # One doorbell per request lands near 232 ns total CPU (4.3 Mrps).
    total = (cal.cpu_tx_ns + cal.cpu_rx_ns + cal.doorbell_ring_ns
             + cal.mmio_doorbell_ns)
    assert 210 <= total <= 250


def test_upi_flow_read_is_batch1_bound():
    cal = DEFAULT_CALIBRATION
    assert abs(1e9 / cal.upi_flow_read_ns / 1e6 - 8.1) < 0.3


def test_endpoint_caps():
    cal = DEFAULT_CALIBRATION
    raw_cap_mrps = 1e9 / cal.upi_endpoint_line_ns / 1e6
    assert 75 <= raw_cap_mrps <= 90  # Fig 11 right, red line plateau


def test_oneway_latencies():
    cal = DEFAULT_CALIBRATION
    assert cal.upi_oneway_ns == 400  # §4.4
    assert cal.pcie_dma_oneway_ns == 450  # §5.3
    assert cal.upi_oneway_ns < cal.pcie_dma_oneway_ns


def test_lines_for():
    cal = DEFAULT_CALIBRATION
    assert cal.lines_for(0) == 1
    assert cal.lines_for(1) == 1
    assert cal.lines_for(64) == 1
    assert cal.lines_for(65) == 2
    assert cal.lines_for(128) == 2
    assert cal.lines_for(129) == 3


def test_lines_for_rejects_negative():
    with pytest.raises(ValueError):
        DEFAULT_CALIBRATION.lines_for(-1)


def test_with_overrides_makes_copy():
    cal = DEFAULT_CALIBRATION
    modified = cal.with_overrides(upi_oneway_ns=999)
    assert modified.upi_oneway_ns == 999
    assert cal.upi_oneway_ns == 400
    assert modified.cpu_tx_ns == cal.cpu_tx_ns


def test_calibration_is_frozen():
    with pytest.raises(Exception):
        DEFAULT_CALIBRATION.upi_oneway_ns = 1


def test_app_service_times_present():
    for key in ("memcached_get", "memcached_set", "mica_get", "mica_set"):
        assert APP_SERVICE_TIMES_NS[key] > 0
    assert (APP_SERVICE_TIMES_NS["memcached_set"]
            > APP_SERVICE_TIMES_NS["memcached_get"])
    assert (APP_SERVICE_TIMES_NS["mica_get"]
            < APP_SERVICE_TIMES_NS["memcached_get"])
