"""Unit tests for the core/SMT model."""

import pytest

from repro.hw.calibration import DEFAULT_CALIBRATION
from repro.hw.cpu import Core, SoftwareThread
from repro.sim import Simulator

NO_JITTER = DEFAULT_CALIBRATION.with_overrides(cpu_jitter_mean_ns=0)


def make_core(smt=2):
    sim = Simulator()
    return sim, Core(sim, NO_JITTER, core_id=0, smt=smt)


def test_single_thread_runs_at_nominal_cost():
    sim, core = make_core()
    finish = []

    def proc():
        yield from core.execute(100)
        finish.append(sim.now)

    sim.spawn(proc())
    sim.run()
    assert finish == [100]


def test_two_smt_threads_inflate_cost():
    sim, core = make_core(smt=2)
    finishes = []

    def proc():
        yield from core.execute(1000)
        finishes.append(sim.now)

    sim.spawn(proc())
    sim.spawn(proc())
    sim.run()
    # The SMT multiplier is sampled when an op starts: the first op began
    # alone (nominal cost), the second with a busy sibling (inflated).
    inflated = int(1000 * NO_JITTER.smt_slowdown)
    assert finishes == [1000, inflated]


def test_third_thread_queues_behind_smt_slots():
    sim, core = make_core(smt=2)
    finishes = []

    def proc(tag):
        yield from core.execute(1000)
        finishes.append((tag, sim.now))

    for tag in range(3):
        sim.spawn(proc(tag))
    sim.run()
    # Two run first; the third starts only after a slot frees.
    third = dict(finishes)[2]
    assert third > int(1000 * NO_JITTER.smt_slowdown)


def test_smt1_core_serializes():
    sim, core = make_core(smt=1)
    finishes = []

    def proc():
        yield from core.execute(100)
        finishes.append(sim.now)

    sim.spawn(proc())
    sim.spawn(proc())
    sim.run()
    assert finishes == [100, 200]


def test_busy_accounting():
    sim, core = make_core()

    def proc():
        yield from core.execute(500)

    sim.spawn(proc())
    sim.run()
    assert core.busy_ns == 500


def test_negative_cost_rejected():
    sim, core = make_core()

    def proc():
        yield from core.execute(-5)

    with pytest.raises(ValueError):
        sim.run_until_done(sim.spawn(proc()))


def test_bad_smt_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        Core(sim, NO_JITTER, core_id=0, smt=0)


def test_jitter_adds_time():
    sim = Simulator()
    jittery = DEFAULT_CALIBRATION.with_overrides(cpu_jitter_mean_ns=50)
    core = Core(sim, jittery, core_id=0)
    finishes = []

    def proc():
        for _ in range(200):
            yield from core.execute(100)
        finishes.append(sim.now)

    sim.spawn(proc())
    sim.run()
    # 200 ops at 100 ns + exponential jitter with mean 50.
    assert finishes[0] > 200 * 100
    assert finishes[0] < 200 * 100 + 200 * 50 * 4


def test_software_thread_counts_ops():
    sim, core = make_core()
    thread = SoftwareThread(core, name="t")

    def proc():
        yield from thread.exec(10)
        yield from thread.exec(10)

    sim.spawn(proc())
    sim.run()
    assert thread.ops == 2
    assert thread.sim is sim


def test_contended_flag():
    sim, core = make_core(smt=1)
    observed = []

    def holder():
        yield from core.execute(100)

    def prober():
        yield sim.timeout(10)
        observed.append(core.contended)

    sim.spawn(holder())
    sim.spawn(holder())
    sim.spawn(prober())
    sim.run()
    assert observed == [True]
