"""Unit tests for MachineConfig / Machine / Fpga."""

import pytest

from repro.hw.platform import Machine, MachineConfig
from repro.sim import Simulator


def test_default_config_matches_table2():
    config = MachineConfig()
    assert config.cores == 12
    assert config.smt == 2
    assert config.freq_ghz == 2.4
    assert config.llc_kb == 30720
    assert config.upi_gbps > config.pcie_gbps  # 19.2 vs 15.74 GB/s


def test_config_validation():
    with pytest.raises(ValueError):
        MachineConfig(cores=0)
    with pytest.raises(ValueError):
        MachineConfig(smt=0)


def test_machine_builds_cores():
    machine = Machine(Simulator())
    assert len(machine.cores) == 12
    assert machine.core(0).smt == 2
    assert machine.core(11).core_id == 11


def test_core_out_of_range():
    machine = Machine(Simulator())
    with pytest.raises(IndexError):
        machine.core(12)
    with pytest.raises(IndexError):
        machine.core(-1)


def test_threads_pack_two_per_core():
    machine = Machine(Simulator())
    threads = machine.threads(5, start_core=0)
    cores = [t.core.core_id for t in threads]
    assert cores == [0, 0, 1, 1, 2]


def test_threads_start_core_offset():
    machine = Machine(Simulator())
    threads = machine.threads(2, start_core=6)
    assert [t.core.core_id for t in threads] == [6, 6]


def test_fpga_shared_endpoints():
    machine = Machine(Simulator())
    fpga = machine.fpga
    assert fpga.upi_endpoint is not fpga.upi_write_endpoint
    assert fpga.pcie_endpoint is not fpga.pcie_write_endpoint
    assert fpga.hcc.size_bytes == 128 * 1024
    assert fpga.nics == []


def test_attach_nic_registers():
    machine = Machine(Simulator())
    sentinel = object()
    machine.fpga.attach_nic(sentinel)
    assert machine.fpga.nics == [sentinel]


def test_machines_with_same_seed_have_same_core_rngs():
    a = Machine(Simulator(), seed=7)
    b = Machine(Simulator(), seed=7)
    assert a.cores[0].rng.random() == b.cores[0].rng.random()
