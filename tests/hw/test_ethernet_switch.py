"""Unit tests for the Ethernet port and ToR switch models."""

import pytest

from repro.hw.calibration import DEFAULT_CALIBRATION
from repro.hw.ethernet import ETHERNET_OVERHEAD_BYTES, MIN_FRAME_BYTES, EthernetPort
from repro.hw.switch import ShardBoundary, ToRSwitch, UnknownDestinationError
from repro.sim import Simulator

CAL = DEFAULT_CALIBRATION


# -------------------------------------------------------------- Ethernet


def test_frame_bytes_min_size():
    port = EthernetPort(Simulator(), CAL)
    assert port.frame_bytes(1) == MIN_FRAME_BYTES + ETHERNET_OVERHEAD_BYTES
    assert port.frame_bytes(64) == 64 + ETHERNET_OVERHEAD_BYTES
    assert port.frame_bytes(1500) == 1500 + ETHERNET_OVERHEAD_BYTES


def test_serialization_time_scales():
    port = EthernetPort(Simulator(), CAL)
    assert port.serialization_ns(64) < port.serialization_ns(1500)
    # 100 GbE: a minimum frame serializes in a handful of ns.
    assert port.serialization_ns(64) <= 10


def test_transmit_occupies_port_serially():
    sim = Simulator()
    port = EthernetPort(sim, CAL)
    finishes = []

    def sender():
        yield from port.transmit(1500)
        finishes.append(sim.now)

    sim.spawn(sender())
    sim.spawn(sender())
    sim.run()
    assert finishes[1] == 2 * finishes[0]
    assert port.frames == 2
    assert port.bytes == 2 * port.frame_bytes(1500)


def test_transmit_rejects_negative():
    sim = Simulator()
    port = EthernetPort(sim, CAL)

    def sender():
        yield from port.transmit(-1)

    with pytest.raises(ValueError):
        sim.run_until_done(sim.spawn(sender()))


# ------------------------------------------------------------------ Switch


def test_switch_delivers_after_delay():
    sim = Simulator()
    switch = ToRSwitch(sim, CAL, loopback=False)
    received = []
    switch.register("dst", lambda pkt: received.append((pkt, sim.now)))
    switch.send("dst", "hello")
    sim.run()
    assert received == [("hello", CAL.tor_delay_ns)]


def test_switch_loopback_delay():
    sim = Simulator()
    switch = ToRSwitch(sim, CAL, loopback=True)
    assert switch.delay_ns == CAL.loopback_delay_ns


def test_switch_explicit_delay_wins():
    sim = Simulator()
    switch = ToRSwitch(sim, CAL, loopback=True, delay_ns=5)
    assert switch.delay_ns == 5


def test_switch_unknown_destination():
    sim = Simulator()
    switch = ToRSwitch(sim, CAL)
    with pytest.raises(UnknownDestinationError):
        switch.send("nowhere", "pkt")


def test_switch_duplicate_registration():
    sim = Simulator()
    switch = ToRSwitch(sim, CAL)
    switch.register("a", lambda pkt: None)
    with pytest.raises(ValueError):
        switch.register("a", lambda pkt: None)


def test_switch_counts_and_addresses():
    sim = Simulator()
    switch = ToRSwitch(sim, CAL)
    switch.register("b", lambda pkt: None)
    switch.register("a", lambda pkt: None)
    switch.send("a", 1)
    switch.send("b", 2)
    sim.run()
    assert switch.packets_forwarded == 2
    assert switch.addresses() == ["a", "b"]


# ------------------------------------------------------- Fault-path schedule


class _StubFaults:
    """Chaos stand-in returning a fixed delivery verdict per crossing."""

    def __init__(self, verdicts):
        self.verdicts = list(verdicts)

    def on_wire(self, dst_address, packet):
        return self.verdicts.pop(0)


def test_switch_fault_and_fast_paths_share_delay():
    # Both paths route through _schedule: a fault verdict with zero extra
    # delay must land at exactly the same time as the perfect wire.
    sim = Simulator()
    switch = ToRSwitch(sim, CAL)
    received = []
    switch.register("dst", lambda pkt: received.append((pkt, sim.now)))
    switch.wire_faults = _StubFaults([[("faulted", 0)], [("delayed", 7)]])
    switch.send("dst", "faulted")
    switch.send("dst", "delayed")
    switch.wire_faults = None
    switch.send("dst", "clean")
    sim.run()
    assert sorted(received) == [
        ("clean", CAL.tor_delay_ns),
        ("delayed", CAL.tor_delay_ns + 7),
        ("faulted", CAL.tor_delay_ns),
    ]
    assert switch.packets_forwarded == 3
    assert switch.packets_dropped == 0


def test_switch_fault_loss_accounting():
    sim = Simulator()
    switch = ToRSwitch(sim, CAL)
    received = []
    switch.register("dst", received.append)
    switch.wire_faults = _StubFaults([[], [("dup", 0), ("dup", 3)]])
    switch.send("dst", "lost")
    switch.send("dst", "dup")
    sim.run()
    assert received == ["dup", "dup"]
    assert switch.packets_forwarded == 2
    assert switch.packets_dropped == 1


# ----------------------------------------------------------- ShardBoundary


def test_boundary_local_delivery_uses_switch_path():
    sim = Simulator()
    boundary = ShardBoundary(sim, CAL, host_id=3)
    received = []
    boundary.register("local", lambda pkt: received.append((pkt, sim.now)))
    boundary.send("local", "pkt")
    sim.run()
    assert received == [("pkt", CAL.tor_delay_ns)]
    assert boundary.drain_egress() == []


def test_boundary_captures_remote_egress():
    sim = Simulator()
    boundary = ShardBoundary(sim, CAL, host_id=1, delay_ns=300)
    boundary.register("local", lambda pkt: None)
    boundary.set_remote_addresses(["local", "far", "farther"])
    boundary.send("far", "a")
    boundary.send("farther", "b")
    assert boundary.packets_forwarded == 2
    egress = boundary.drain_egress()
    # (arrival = now + delay, src host, monotonically increasing seq).
    assert egress == [(300, 1, 0, "far", "a"), (300, 1, 1, "farther", "b")]
    assert boundary.drain_egress() == []  # drain clears


def test_boundary_remote_set_excludes_local_table():
    sim = Simulator()
    boundary = ShardBoundary(sim, CAL)
    boundary.register("local", lambda pkt: None)
    boundary.set_remote_addresses(["local", "far"])
    received = []
    boundary._table["local"] = received.append
    boundary.send("local", "pkt")  # local wins, never captured
    sim.run()
    assert received == ["pkt"]
    assert boundary.drain_egress() == []


def test_boundary_unknown_destination():
    sim = Simulator()
    boundary = ShardBoundary(sim, CAL)
    boundary.set_remote_addresses(["far"])
    with pytest.raises(UnknownDestinationError):
        boundary.send("nowhere", "pkt")


def test_boundary_deliver_is_immediate():
    sim = Simulator()
    boundary = ShardBoundary(sim, CAL)
    received = []
    boundary.register("local", lambda pkt: received.append((pkt, sim.now)))
    boundary.deliver("local", "injected")
    assert received == [("injected", 0)]
