"""Unit tests for the Ethernet port and ToR switch models."""

import pytest

from repro.hw.calibration import DEFAULT_CALIBRATION
from repro.hw.ethernet import ETHERNET_OVERHEAD_BYTES, MIN_FRAME_BYTES, EthernetPort
from repro.hw.switch import ToRSwitch, UnknownDestinationError
from repro.sim import Simulator

CAL = DEFAULT_CALIBRATION


# -------------------------------------------------------------- Ethernet


def test_frame_bytes_min_size():
    port = EthernetPort(Simulator(), CAL)
    assert port.frame_bytes(1) == MIN_FRAME_BYTES + ETHERNET_OVERHEAD_BYTES
    assert port.frame_bytes(64) == 64 + ETHERNET_OVERHEAD_BYTES
    assert port.frame_bytes(1500) == 1500 + ETHERNET_OVERHEAD_BYTES


def test_serialization_time_scales():
    port = EthernetPort(Simulator(), CAL)
    assert port.serialization_ns(64) < port.serialization_ns(1500)
    # 100 GbE: a minimum frame serializes in a handful of ns.
    assert port.serialization_ns(64) <= 10


def test_transmit_occupies_port_serially():
    sim = Simulator()
    port = EthernetPort(sim, CAL)
    finishes = []

    def sender():
        yield from port.transmit(1500)
        finishes.append(sim.now)

    sim.spawn(sender())
    sim.spawn(sender())
    sim.run()
    assert finishes[1] == 2 * finishes[0]
    assert port.frames == 2
    assert port.bytes == 2 * port.frame_bytes(1500)


def test_transmit_rejects_negative():
    sim = Simulator()
    port = EthernetPort(sim, CAL)

    def sender():
        yield from port.transmit(-1)

    with pytest.raises(ValueError):
        sim.run_until_done(sim.spawn(sender()))


# ------------------------------------------------------------------ Switch


def test_switch_delivers_after_delay():
    sim = Simulator()
    switch = ToRSwitch(sim, CAL, loopback=False)
    received = []
    switch.register("dst", lambda pkt: received.append((pkt, sim.now)))
    switch.send("dst", "hello")
    sim.run()
    assert received == [("hello", CAL.tor_delay_ns)]


def test_switch_loopback_delay():
    sim = Simulator()
    switch = ToRSwitch(sim, CAL, loopback=True)
    assert switch.delay_ns == CAL.loopback_delay_ns


def test_switch_explicit_delay_wins():
    sim = Simulator()
    switch = ToRSwitch(sim, CAL, loopback=True, delay_ns=5)
    assert switch.delay_ns == 5


def test_switch_unknown_destination():
    sim = Simulator()
    switch = ToRSwitch(sim, CAL)
    with pytest.raises(UnknownDestinationError):
        switch.send("nowhere", "pkt")


def test_switch_duplicate_registration():
    sim = Simulator()
    switch = ToRSwitch(sim, CAL)
    switch.register("a", lambda pkt: None)
    with pytest.raises(ValueError):
        switch.register("a", lambda pkt: None)


def test_switch_counts_and_addresses():
    sim = Simulator()
    switch = ToRSwitch(sim, CAL)
    switch.register("b", lambda pkt: None)
    switch.register("a", lambda pkt: None)
    switch.send("a", 1)
    switch.send("b", 2)
    sim.run()
    assert switch.packets_forwarded == 2
    assert switch.addresses() == ["a", "b"]
