#!/usr/bin/env python3
"""Compare CPU-NIC interfaces: MMIO vs doorbells vs the UPI coherent bus.

Reproduces the core of Fig 10 at example scale: the same single-core echo
workload over each CPU-NIC interface scheme, showing why Dagger's
memory-interconnect design wins on both axes — no doorbell MMIOs on the
transmit path, and a better messaging model for small RPCs.

Run:  python examples/interface_comparison.py
"""

from repro.harness import run_closed_loop, run_open_loop
from repro.harness.report import render_table

CONFIGS = [
    ("WQE-by-MMIO", "pcie-mmio", 1),
    ("doorbell", "pcie-doorbell", 1),
    ("doorbell, B=7", "pcie-doorbell", 7),
    ("UPI (Dagger), B=1", "upi", 1),
    ("UPI (Dagger), B=4", "upi", 4),
]


def main():
    rows = []
    for label, interface, batch in CONFIGS:
        saturated = run_closed_loop(interface=interface, batch_size=batch,
                                    nreq=8000)
        loaded = run_open_loop(
            load_mrps=0.75 * saturated.throughput_mrps,
            interface=interface, batch_size=batch, nreq=6000,
        )
        rows.append((label, saturated.throughput_mrps, loaded.p50_us,
                     loaded.p99_us))
        print(f"measured {label}...")
    print()
    print(render_table(
        ["CPU-NIC interface", "Mrps/core", "p50 us", "p99 us"], rows,
        title="64 B echo RPCs, one core each side (cf. Fig 10)",
    ))
    best_pcie = max(rows[:3], key=lambda r: r[1])
    upi = rows[-1]
    print(f"\nUPI vs best PCIe mode: {upi[1] / best_pcie[1]:.2f}x "
          f"throughput at {best_pcie[2] / upi[2]:.2f}x lower median latency")


if __name__ == "__main__":
    main()
