#!/usr/bin/env python3
"""The 8-tier Flight Registration microservice application (Fig 13).

Builds the full multi-tier service — two front-ends, Check-in, Flight,
Baggage, Passport, and two MICA-backed databases, each tier on its own
virtualized NIC instance of one FPGA — and contrasts the two threading
models of Table 4: handlers in dispatch threads ("Simple") versus worker
threads ("Optimized").

Run:  python examples/flight_registration.py
"""

from repro.apps.microservices.flight import build_flight_app
from repro.harness.report import render_table


def main():
    rows = []

    print("running Simple model (handlers in dispatch threads)...")
    app = build_flight_app(optimized=False)
    latency = app.run(0.025, nreq=1200)
    app = build_flight_app(optimized=False)
    loaded = app.run(3.2, nreq=2500, measure_from_issue=True)
    rows.append(("simple", latency.p50_us, latency.p90_us, latency.p99_us,
                 loaded.throughput_krps, f"{loaded.drop_rate:.1%}"))

    print("running Optimized model (Flight/Check-in/Passport on workers)...")
    app = build_flight_app(optimized=True)
    latency = app.run(5, nreq=2000)
    app = build_flight_app(optimized=True)
    loaded = app.run(38, nreq=4000, measure_from_issue=True)
    rows.append(("optimized", latency.p50_us, latency.p90_us,
                 latency.p99_us, loaded.throughput_krps,
                 f"{loaded.drop_rate:.1%}"))

    print()
    print(render_table(
        ["threading", "p50 us", "p90 us", "p99 us", "max load Krps",
         "drops"],
        rows,
        title="Flight Registration service (cf. Table 4)",
    ))
    simple, optimized = rows
    print(f"\nworker threading: {optimized[4] / simple[4]:.0f}x throughput "
          f"for +{optimized[1] - simple[1]:.1f} us median latency")
    print(f"airport db records: {app.airport_db.total_items}, "
          f"misrouted requests: {app.airport_db.misrouted} "
          "(object-level balancer keeps MICA partition-local)")


if __name__ == "__main__":
    main()
