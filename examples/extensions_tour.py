#!/usr/bin/env python3
"""Tour of the implemented future-work extensions.

The paper defers three things to follow-up work; this repo implements all
of them, and this example exercises each:

1. **Protocol unit extensions** (§4.5): NIC-side NACK/retransmit recovers
   ring-overflow drops, and receiver-driven credit flow control prevents
   them entirely — both with zero host CPU.
2. **CAM-based hardware RPC reassembly** (§4.7): removes the software
   reassembly cost for multi-cache-line RPCs, for an FPGA-area price.
3. **Distributed FPGAs** (§5.6): MICA multi-core scaling measured without
   client/server colocation.

Run:  python examples/extensions_tour.py
"""

from repro.apps.kvs.cluster_bench import run_kvs_multicore
from repro.harness import EchoRig
from repro.harness.report import render_table
from repro.hw.nic.config import NicHardConfig
from repro.hw.nic.resources import estimate_resources


def reliability_demo():
    print("1) Protocol unit variants under ring pressure (8-entry rings):")
    rows = []
    configs = [
        ("udp-like (paper)", {}),
        ("NACK/retransmit", {"reliable_transport": True}),
        ("credit flow control", {"flow_control": True,
                                 "flow_control_credits": 8,
                                 "credit_batch": 4}),
    ]
    for label, overrides in configs:
        rig = EchoRig(batch_size=4, auto_batch=True, rx_ring_entries=8,
                      hard_overrides=overrides)
        result = rig.closed_loop(window=64, nreq=5000)
        nic = rig.client_stack.nic
        retx = (nic.transport.stats.retransmissions
                if nic.transport is not None else 0)
        rows.append((label, result.count, rig.drops, retx))
    print(render_table(
        ["protocol unit", "RPCs completed", "drops", "retransmissions"],
        rows,
    ))


def reassembly_demo():
    print("\n2) software vs CAM reassembly for 1 KB RPCs:")
    rows = []
    for hw in (False, True):
        rig = EchoRig(batch_size=4, auto_batch=True, rpc_bytes=1008,
                      hard_overrides={"hw_reassembly": hw})
        result = rig.closed_loop(window=64, nreq=4000)
        rows.append(("CAM (on-chip)" if hw else "software (paper)",
                     result.throughput_mrps))
    base = estimate_resources(NicHardConfig())
    cam = estimate_resources(NicHardConfig(hw_reassembly=True))
    print(render_table(["reassembly", "Mrps/core (1 KB RPCs)"], rows))
    print(f"   CAM price: +{(cam.luts - base.luts) / 1000:.0f}K LUTs, "
          f"+{cam.m20k_blocks - base.m20k_blocks} M20K blocks")


def cluster_demo():
    print("\n3) MICA multi-core scaling over distributed FPGAs:")
    rows = []
    for threads in (1, 2, 4, 8):
        result = run_kvs_multicore(server_threads=threads,
                                   nreq_per_thread=2000)
        rows.append((threads, result.throughput_mrps, result.p99_us))
    print(render_table(["server threads", "Mrps", "p99 us"], rows))


def main():
    reliability_demo()
    reassembly_demo()
    cluster_demo()


if __name__ == "__main__":
    main()
