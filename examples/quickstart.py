#!/usr/bin/env python3
"""Quickstart: define a service in the Dagger IDL, run it over the
simulated Dagger NIC, and make a few calls.

This is the 60-second tour of the public API:

1. write an IDL (Listing 1 of the paper) and generate stubs;
2. build a machine with two Dagger NIC instances on its FPGA, connected
   through a loopback switch (the paper's experimental setup);
3. register a servicer, open a connection, call the service.

Run:  python examples/quickstart.py
"""

from repro.hw.nic.config import NicHardConfig, NicSoftConfig
from repro.hw.platform import Machine
from repro.hw.switch import ToRSwitch
from repro.rpc import RpcClient, RpcThreadedServer
from repro.rpc.idl import load_idl
from repro.sim import Simulator
from repro.stacks import DaggerStack, connect

IDL = """
# The key-value interface from Listing 1 of the paper.
Message GetRequest {
    int32 timestamp;
    char[32] key;
}
Message GetResponse {
    int32 timestamp;
    char[32] value;
}
Message SetRequest {
    int32 timestamp;
    char[32] key;
    char[32] value;
}
Message SetResponse {
    int32 timestamp;
}

Service KeyValueStore {
    rpc get(GetRequest) returns(GetResponse);
    rpc set(SetRequest) returns(SetResponse);
}
"""


def main():
    # -- 1. generate stubs from the IDL ------------------------------------
    api = load_idl(IDL)
    GetRequest, SetRequest = api["GetRequest"], api["SetRequest"]
    GetResponse, SetResponse = api["GetResponse"], api["SetResponse"]

    # -- 2. build the platform ----------------------------------------------
    sim = Simulator()
    machine = Machine(sim)  # 12-core Broadwell + Arria 10, Table 2
    switch = ToRSwitch(sim, machine.calibration, loopback=True)
    hard = NicHardConfig(num_flows=1, interface="upi")
    soft = NicSoftConfig(batch_size=4, auto_batch=True)
    client_stack = DaggerStack(machine, switch, "client-host",
                               hard=hard, soft=soft)
    server_stack = DaggerStack(machine, switch, "server-host",
                               hard=hard, soft=soft)

    # -- 3. implement and register the service -------------------------------
    store = {}

    class KvStore(api["KeyValueStoreServicer"]):
        def get(self, ctx, request):
            yield from ctx.exec(150)  # pretend hash-table lookup
            value = store.get(request.key, b"")
            return GetResponse(timestamp=request.timestamp, value=value)

        def set(self, ctx, request):
            yield from ctx.exec(250)
            store[request.key] = request.value
            return SetResponse(timestamp=request.timestamp)

    server = RpcThreadedServer(sim, machine.calibration, name="kvs")
    KvStore().register(server)
    server.add_server_thread(server_stack.port(0), machine.thread(6))
    server.start()

    # -- 4. connect and call ---------------------------------------------------
    connection = connect(client_stack, 0, server_stack, 0)
    rpc_client = RpcClient(client_stack.port(0), machine.thread(0),
                           connection)
    stub = api["KeyValueStoreClient"](rpc_client)

    def client_logic():
        response = yield from stub.set(
            SetRequest(timestamp=1, key=b"dagger", value=b"asplos21")
        )
        print(f"SET completed at t={sim.now} ns (ts={response.timestamp})")
        start = sim.now
        response = yield from stub.get(GetRequest(timestamp=2, key=b"dagger"))
        rtt_us = (sim.now - start) / 1000
        value = response.value.rstrip(b"\x00")
        print(f"GET -> {value!r} in {rtt_us:.2f} us round-trip")
        missing = yield from stub.get(GetRequest(timestamp=3, key=b"nope"))
        missing_value = missing.value.rstrip(b"\x00")
        print(f"GET missing key -> {missing_value!r}")

    sim.run_until_done(sim.spawn(client_logic()))
    print(f"NIC stats: {client_stack.nic.monitor.snapshot()}")


if __name__ == "__main__":
    main()
