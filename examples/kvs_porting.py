#!/usr/bin/env python3
"""Port memcached and MICA onto Dagger and compare with native transports.

Reproduces the spirit of section 5.6: the same KVS workload (zipf 0.99,
write-intensive mix) served over the Dagger stack versus each store's
native transport — kernel TCP for memcached, DPDK for MICA — showing the
order-of-magnitude access-latency reduction the paper reports.

Run:  python examples/kvs_porting.py
"""

from repro.apps.kvs import run_kvs_workload
from repro.harness.report import render_table


def measure(system, stack, window):
    return run_kvs_workload(
        system=system, stack_name=stack, key_bytes=8, value_bytes=8,
        num_keys=1_000_000, get_fraction=0.5, nreq=6000,
        closed_loop_window=window,
    )


def main():
    rows = []
    for system, native_stack, window in (("memcached", "linux-tcp", 2),
                                         ("mica", "dpdk", 16)):
        native = measure(system, native_stack, window)
        dagger = measure(system, "dagger", window)
        speedup = native.p50_us / dagger.p50_us
        rows.append((system, native_stack, native.p50_us, native.p99_us,
                     dagger.p50_us, dagger.p99_us, f"{speedup:.1f}x"))
        print(f"measured {system} over {native_stack} and dagger...")
    print()
    print(render_table(
        ["system", "native stack", "native p50", "native p99",
         "dagger p50", "dagger p99", "median speedup"],
        rows,
        title=("KVS access latency (us), tiny dataset, 50% GET "
               "(cf. section 5.6)"),
    ))
    print("\nPorting cost in this repo mirrors the paper's: the stores are "
          "unchanged;\nonly the stack factory argument differs "
          "(~memcached's 50-LOC patch).")


if __name__ == "__main__":
    main()
