#!/usr/bin/env python3
"""Characterize networking overheads in a microservice graph (section 3).

Runs the DeathStarBench-style Social Network application over the kernel
TCP/IP baseline and prints the per-tier latency breakdown of Fig 3 — how
much of each tier's latency goes to application logic versus RPC processing
versus the transport — and the e2e effect of moving the same graph onto
Dagger.

Run:  python examples/microservice_characterization.py
"""

from repro.apps.microservices.social_network import (
    DEFAULT_MIX,
    PROFILED_TIERS,
    social_network_graph,
)
from repro.harness.report import render_table


def main():
    print("running Social Network over kernel TCP/IP...")
    tcp_graph = social_network_graph("linux-tcp")
    tcp = tcp_graph.run_load("nginx", DEFAULT_MIX, load_krps=10, nreq=3000)

    rows = []
    for label, tier in PROFILED_TIERS.items():
        b = tcp.tracer.breakdown(tier)
        rows.append((f"{label} {tier}", b.p50_us, b.p99_us,
                     f"{b.app_fraction:.0%}", f"{b.rpc_fraction:.0%}",
                     f"{b.transport_fraction:.0%}"))
    print()
    print(render_table(
        ["tier", "p50 us", "p99 us", "app", "rpc", "tcp/ip"], rows,
        title="Per-tier latency breakdown over kernel TCP (cf. Fig 3)",
    ))

    print("\nrunning the same graph over Dagger...")
    dagger_graph = social_network_graph("dagger")
    dagger = dagger_graph.run_load("nginx", DEFAULT_MIX, load_krps=10,
                                   nreq=3000)
    print(render_table(
        ["stack", "e2e p50 us", "e2e p99 us"],
        [("linux-tcp", tcp.p50_us, tcp.p99_us),
         ("dagger", dagger.p50_us, dagger.p99_us)],
        title="End-to-end request latency",
    ))
    print(f"\nDagger removes {1 - dagger.p50_us / tcp.p50_us:.0%} of the "
          "median end-to-end latency by taking the RPC stack off the CPU.")


if __name__ == "__main__":
    main()
